#include "src/io/pool_io.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/core/prr_collection.h"
#include "src/core/prr_sampler.h"
#include "src/im/coverage.h"
#include "src/util/thread_pool.h"

namespace kboost {

namespace {

constexpr char kMagic[8] = {'K', 'B', 'P', 'R', 'R', 'P', 'O', 'L'};
/// v1: single-arena full-mode body. v2: adds num_shards to the header and
/// stores the full-mode body as a per-shard blob-size table followed by one
/// independently-validated arena blob per shard (save and load both fan out
/// over the shards). v1 snapshots still load, as S=1.
constexpr uint32_t kVersion = 2;
constexpr uint32_t kMinVersion = 1;

constexpr uint32_t kFlagLbOnly = 1u << 0;
constexpr uint32_t kFlagSamplesCapped = 1u << 1;

/// Fixed-size snapshot header. Every field is written explicitly (no struct
/// dump), so the on-disk layout is independent of compiler padding.
struct Header {
  uint32_t version = kVersion;
  uint32_t flags = 0;
  uint64_t num_graph_nodes = 0;
  uint64_t pool_budget = 0;  // BoostOptions::k the schedule sampled at
  double epsilon = 0.0;
  double ell = 0.0;
  uint64_t rng_seed = 0;
  uint64_t max_samples = 0;
  uint32_t num_threads = 0;
  uint32_t num_shards = 1;  // v2+; implicit 1 in v1 snapshots
  uint64_t num_seeds = 0;
  uint64_t num_boostable = 0;
  uint64_t num_activated = 0;
  uint64_t num_hopeless = 0;
  uint64_t edges_examined = 0;
  uint64_t uncompressed_edges = 0;
  uint64_t compressed_edges = 0;
};

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

/// Bytes left between the current position and the end of the stream. Used
/// to bound every count-driven allocation: a corrupt count larger than the
/// file itself is rejected before any resize happens.
uint64_t RemainingBytes(std::istream& in) {
  const std::streampos pos = in.tellg();
  in.seekg(0, std::ios::end);
  const std::streampos end = in.tellg();
  in.seekg(pos);
  return static_cast<uint64_t>(end - pos);
}

void WriteHeader(std::ostream& out, const Header& h) {
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, h.version);
  WritePod(out, h.flags);
  WritePod(out, h.num_graph_nodes);
  WritePod(out, h.pool_budget);
  WritePod(out, h.epsilon);
  WritePod(out, h.ell);
  WritePod(out, h.rng_seed);
  WritePod(out, h.max_samples);
  WritePod(out, h.num_threads);
  WritePod(out, h.num_shards);
  WritePod(out, h.num_seeds);
  WritePod(out, h.num_boostable);
  WritePod(out, h.num_activated);
  WritePod(out, h.num_hopeless);
  WritePod(out, h.edges_examined);
  WritePod(out, h.uncompressed_edges);
  WritePod(out, h.compressed_edges);
}

Status ReadHeader(std::istream& in, const std::string& path, Header* h) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a kboost pool snapshot: " + path);
  }
  if (!ReadPod(in, &h->version) || !ReadPod(in, &h->flags)) {
    return Status::IoError("truncated pool snapshot header: " + path);
  }
  // Version gates the field layout, so it must be checked before the
  // remaining fields are interpreted.
  if (h->version < kMinVersion || h->version > kVersion) {
    return Status::InvalidArgument(
        "unsupported pool snapshot version " + std::to_string(h->version) +
        " (this build reads versions " + std::to_string(kMinVersion) + ".." +
        std::to_string(kVersion) + ")");
  }
  if (!ReadPod(in, &h->num_graph_nodes) || !ReadPod(in, &h->pool_budget) ||
      !ReadPod(in, &h->epsilon) || !ReadPod(in, &h->ell) ||
      !ReadPod(in, &h->rng_seed) || !ReadPod(in, &h->max_samples) ||
      !ReadPod(in, &h->num_threads)) {
    return Status::IoError("truncated pool snapshot header: " + path);
  }
  h->num_shards = 1;  // v1 snapshots are single-arena pools
  if (h->version >= 2 && !ReadPod(in, &h->num_shards)) {
    return Status::IoError("truncated pool snapshot header: " + path);
  }
  if (!ReadPod(in, &h->num_seeds) || !ReadPod(in, &h->num_boostable) ||
      !ReadPod(in, &h->num_activated) || !ReadPod(in, &h->num_hopeless) ||
      !ReadPod(in, &h->edges_examined) ||
      !ReadPod(in, &h->uncompressed_edges) ||
      !ReadPod(in, &h->compressed_edges)) {
    return Status::IoError("truncated pool snapshot header: " + path);
  }
  return Status::Ok();
}

}  // namespace

Status SavePoolSnapshot(const BoostSession& session, const std::string& path) {
  if (!session.prepared()) {
    return Status::InvalidArgument(
        "session pool not prepared; call Prepare() before saving");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);

  const PrrBoostEngine& engine = session.engine();
  const PrrCollection& pool = engine.collection();
  const PrrSamplerStats& stats = engine.stats();

  Header h;
  h.flags = (session.lb_only() ? kFlagLbOnly : 0) |
            (engine.samples_capped() ? kFlagSamplesCapped : 0);
  h.num_graph_nodes = pool.num_graph_nodes();
  h.pool_budget = session.budget();
  h.epsilon = session.options().epsilon;
  h.ell = session.options().ell;
  h.rng_seed = session.options().seed;
  h.max_samples = session.options().max_samples;
  h.num_threads = static_cast<uint32_t>(session.options().num_threads);
  h.num_shards = static_cast<uint32_t>(pool.num_shards());
  h.num_seeds = session.seeds().size();
  h.num_boostable = pool.num_boostable();
  h.num_activated = pool.num_activated();
  h.num_hopeless = pool.num_hopeless();
  h.edges_examined = stats.edges_examined;
  h.uncompressed_edges = stats.uncompressed_edges;
  h.compressed_edges = stats.compressed_edges;
  WriteHeader(out, h);
  out.write(reinterpret_cast<const char*>(session.seeds().data()),
            static_cast<std::streamsize>(h.num_seeds * sizeof(NodeId)));

  if (session.lb_only()) {
    // LB mode: only the critical sets exist. Write them as one flat
    // offsets/nodes pair over the non-empty sample numbering.
    const CoverageSelector& coverage = pool.coverage();
    const uint64_t num_sets = coverage.num_nonempty_sets();
    WritePod(out, num_sets);
    uint64_t offset = 0;
    WritePod(out, offset);
    for (uint64_t i = 0; i < num_sets; ++i) {
      offset += coverage.SetNodes(i).size();
      WritePod(out, offset);
    }
    for (uint64_t i = 0; i < num_sets; ++i) {
      const std::span<const NodeId> nodes = coverage.SetNodes(i);
      out.write(reinterpret_cast<const char*>(nodes.data()),
                static_cast<std::streamsize>(nodes.size() * sizeof(NodeId)));
    }
  } else {
    // v2 multi-shard body: per-shard blob sizes, then the blobs. Shards
    // serialize concurrently into memory buffers; the size table is what
    // lets the loader slice the stream and deserialize shards in parallel
    // (and bound every per-shard allocation before it happens).
    const size_t num_shards = pool.num_shards();
    std::vector<std::string> blobs(num_shards);
    ParallelFor(
        num_shards, session.options().num_threads,
        [&](size_t s, int /*t*/) {
          std::ostringstream buffer(std::ios::binary);
          pool.shard_store(s).Serialize(buffer);
          blobs[s] = std::move(buffer).str();
        },
        /*chunk=*/1);
    for (const std::string& blob : blobs) {
      WritePod(out, static_cast<uint64_t>(blob.size()));
    }
    for (const std::string& blob : blobs) {
      out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    }
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<std::unique_ptr<BoostSession>> LoadPoolSnapshot(
    const DirectedGraph& graph, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  Header h;
  Status header_status = ReadHeader(in, path, &h);
  if (!header_status.ok()) return header_status;
  if (h.num_graph_nodes != graph.num_nodes()) {
    return Status::InvalidArgument(
        "pool snapshot was taken against a graph with " +
        std::to_string(h.num_graph_nodes) + " nodes, not " +
        std::to_string(graph.num_nodes()));
  }
  if (h.pool_budget == 0 || h.num_seeds == 0 ||
      h.num_seeds > graph.num_nodes() || h.num_shards == 0 ||
      h.num_shards > static_cast<uint32_t>(PrrCollection::kMaxShards)) {
    return Status::InvalidArgument("corrupt pool snapshot header: " + path);
  }
  const bool lb_only = (h.flags & kFlagLbOnly) != 0;

  std::vector<NodeId> seeds(h.num_seeds);
  in.read(reinterpret_cast<char*>(seeds.data()),
          static_cast<std::streamsize>(h.num_seeds * sizeof(NodeId)));
  if (!in) return Status::IoError("truncated pool snapshot: " + path);
  for (NodeId s : seeds) {
    if (s >= graph.num_nodes()) {
      return Status::OutOfRange("snapshot seed out of range: " +
                                std::to_string(s));
    }
  }

  auto pool = std::make_unique<PrrCollection>(
      graph.num_nodes(), static_cast<int>(h.num_shards));
  if (lb_only) {
    uint64_t num_sets = 0;
    if (!ReadPod(in, &num_sets) || num_sets != h.num_boostable ||
        num_sets > RemainingBytes(in) / sizeof(uint64_t)) {
      return Status::InvalidArgument("corrupt LB pool snapshot: " + path);
    }
    std::vector<uint64_t> offsets(num_sets + 1);
    in.read(reinterpret_cast<char*>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() * sizeof(uint64_t)));
    if (!in || offsets[0] != 0) {
      return Status::InvalidArgument("corrupt LB pool snapshot: " + path);
    }
    for (uint64_t i = 0; i < num_sets; ++i) {
      if (offsets[i] > offsets[i + 1]) {
        return Status::InvalidArgument("corrupt LB pool snapshot: " + path);
      }
    }
    if (offsets[num_sets] > RemainingBytes(in) / sizeof(NodeId)) {
      return Status::InvalidArgument("corrupt LB pool snapshot: " + path);
    }
    std::vector<NodeId> nodes(offsets[num_sets]);
    in.read(reinterpret_cast<char*>(nodes.data()),
            static_cast<std::streamsize>(nodes.size() * sizeof(NodeId)));
    if (!in) return Status::IoError("truncated pool snapshot: " + path);
    for (NodeId v : nodes) {
      if (v >= graph.num_nodes()) {
        return Status::OutOfRange("snapshot critical node out of range: " +
                                  std::to_string(v));
      }
    }
    for (uint64_t i = 0; i < num_sets; ++i) {
      pool->AddBoostableCriticalOnly(std::span<const NodeId>(
          nodes.data() + offsets[i], offsets[i + 1] - offsets[i]));
    }
    pool->AddNonBoostableCounts(h.num_activated, h.num_hopeless);
  } else {
    const size_t num_shards = h.num_shards;
    std::vector<std::string> blobs(num_shards);
    if (h.version >= 2) {
      // v2 body: the blob-size table bounds every read before it happens —
      // reject a table that promises more bytes than the stream holds.
      std::vector<uint64_t> blob_sizes(num_shards);
      for (size_t s = 0; s < num_shards; ++s) {
        if (!ReadPod(in, &blob_sizes[s])) {
          return Status::IoError("truncated shard size table: " + path);
        }
      }
      // Per-entry then cumulative bound (the per-entry check also keeps the
      // running total overflow-free). An absurd single entry means a corrupt
      // table; a plausible table that sums past the stream means the file
      // was cut short, so that case reports as truncation.
      const uint64_t remaining = RemainingBytes(in);
      uint64_t total_bytes = 0;
      for (size_t s = 0; s < num_shards; ++s) {
        if (blob_sizes[s] > remaining) {
          return Status::InvalidArgument(
              "shard table declares more data than the snapshot holds: " +
              path);
        }
        if (total_bytes + blob_sizes[s] > remaining) {
          return Status::IoError("truncated shard block " +
                                 std::to_string(s) + ": " + path);
        }
        total_bytes += blob_sizes[s];
      }
      for (size_t s = 0; s < num_shards; ++s) {
        blobs[s].resize(blob_sizes[s]);
        in.read(blobs[s].data(),
                static_cast<std::streamsize>(blob_sizes[s]));
        if (!in) {
          return Status::IoError("truncated shard block " +
                                 std::to_string(s) + ": " + path);
        }
      }
    } else {
      // v1 body: one arena blob spanning the rest of the stream; loads as a
      // single-shard pool.
      const uint64_t bytes = RemainingBytes(in);
      blobs[0].resize(bytes);
      in.read(blobs[0].data(), static_cast<std::streamsize>(bytes));
      if (!in) return Status::IoError("truncated pool snapshot: " + path);
    }

    // Per-shard deserialization and structural validation fan out over the
    // workers; every shard reports its own Status and the first failure (in
    // shard order, for a deterministic message) wins.
    const int load_threads =
        std::min(std::max(1, static_cast<int>(h.num_threads)),
                 ThreadPool::kMaxWorkers);
    std::vector<PrrStore> stores(num_shards);
    std::vector<Status> shard_status(num_shards, Status::Ok());
    ParallelFor(
        num_shards, load_threads,
        [&](size_t s, int /*t*/) {
          std::istringstream blob_in(blobs[s], std::ios::binary);
          if (Status arena = stores[s].Deserialize(blob_in); !arena.ok()) {
            shard_status[s] = Status::InvalidArgument(
                "corrupt PRR-graph arena in shard " + std::to_string(s) +
                " of snapshot " + path + ": " + arena.ToString());
            return;
          }
          // Global ids must fit the serving graph before views reach
          // evaluators.
          for (size_t g = 0; g < stores[s].num_graphs(); ++g) {
            const PrrGraphView view = stores[s].View(g);
            for (uint32_t v = PrrGraph::kRootLocal; v < view.num_nodes();
                 ++v) {
              if (view.global_ids[v] >= graph.num_nodes()) {
                shard_status[s] = Status::OutOfRange(
                    "snapshot PRR-graph node out of range: " +
                    std::to_string(view.global_ids[v]));
                return;
              }
            }
          }
        },
        /*chunk=*/1);
    for (const Status& s : shard_status) {
      if (!s.ok()) return s;
    }
    size_t total_graphs = 0;
    for (const PrrStore& store : stores) total_graphs += store.num_graphs();
    if (total_graphs != h.num_boostable) {
      return Status::InvalidArgument(
          "snapshot header declares " + std::to_string(h.num_boostable) +
          " boostable graphs but the shard arenas hold " +
          std::to_string(total_graphs));
    }
    pool->RestoreFullPool(std::move(stores), h.num_activated, h.num_hopeless);
  }

  BoostOptions options;
  options.k = h.pool_budget;
  options.epsilon = h.epsilon;
  options.ell = h.ell;
  options.seed = h.rng_seed;
  options.max_samples = h.max_samples;
  if (h.num_threads > 0) options.num_threads = static_cast<int>(h.num_threads);
  options.num_shards = static_cast<int>(h.num_shards);

  PrrSamplerStats stats;
  stats.edges_examined = h.edges_examined;
  stats.uncompressed_edges = h.uncompressed_edges;
  stats.compressed_edges = h.compressed_edges;

  auto session = std::make_unique<BoostSession>(graph, std::move(seeds),
                                                options, lb_only);
  session->engine().AdoptPool(std::move(pool), stats,
                              (h.flags & kFlagSamplesCapped) != 0);
  return session;
}

}  // namespace kboost
