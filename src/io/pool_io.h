#ifndef KBOOST_IO_POOL_IO_H_
#define KBOOST_IO_POOL_IO_H_

#include <memory>
#include <string>

#include "src/core/boost_session.h"
#include "src/util/status.h"

namespace kboost {

/// Binary snapshot save/load of a prepared BoostSession pool — the sampled
/// PRR-graph arena (full mode) or critical sets (LB mode), the sample
/// counters, the sampler statistics and the sampling metadata (seeds, budget,
/// ε, ℓ, rng seed), behind a versioned header. A reloaded session answers
/// SolveForBudget with bit-identical best sets and estimates, enabling warm
/// restarts and cross-process serving against one prepared index.
///
/// The format is host-endian (the magic doubles as an endianness check) and
/// trusted to the extent of the structural validation performed on load:
/// header match, count consistency, offset monotonicity and id ranges.

/// Writes the session's pool to `path`. The session must be prepared()
/// (BoostSession::SavePool prepares and delegates here).
Status SavePoolSnapshot(const BoostSession& session, const std::string& path);

/// Restores a session from a snapshot taken against a graph with the same
/// node count. Seeds and BoostOptions come from the snapshot; the returned
/// session is prepared() and never resamples.
StatusOr<std::unique_ptr<BoostSession>> LoadPoolSnapshot(
    const DirectedGraph& graph, const std::string& path);

}  // namespace kboost

#endif  // KBOOST_IO_POOL_IO_H_
