#ifndef KBOOST_IO_POOL_IO_H_
#define KBOOST_IO_POOL_IO_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "src/core/boost_session.h"
#include "src/io/codec.h"
#include "src/util/status.h"

namespace kboost {

/// Binary snapshot save/load of a prepared BoostSession pool — the sampled
/// PRR-graph arena (full mode) or critical sets (LB mode), the sample
/// counters, the sampler statistics and the sampling metadata (seeds, budget,
/// ε, ℓ, rng seed), behind a versioned header. A reloaded session answers
/// SolveForBudget with bit-identical best sets and estimates, enabling warm
/// restarts and cross-process serving against one prepared index.
///
/// Formats:
///   v1/v2 — legacy stream formats (v2 adds the per-shard blob table). Both
///           still load; only v2 can still be written (PoolSaveOptions::
///           format_version = 2, for compatibility tests).
///   v3    — the current format: each shard arena is written as eight flat
///           uint32 sections behind a page-aligned section directory, so a
///           nop-coded snapshot is servable directly from an mmap'd file
///           (PoolLoadOptions::use_mmap / MmapPool) with no per-process copy,
///           and each section block may independently be compressed by a
///           pluggable codec (src/io/codec.h) for cold storage. Nop-coded
///           snapshots additionally carry one pool-level coverage section —
///           the critical sets pre-translated to global ids, shard-major —
///           so the mmap path binds the greedy-coverage node pool in place
///           too and warm start does no O(total_critical) re-gather.
///
/// Byte order: v3 headers stamp an endianness marker and the loader rejects
/// snapshots written on a different-endianness host with a typed Status.
/// v1/v2 snapshots predate the marker and are assumed host-endian (the magic
/// does NOT detect a byte-order mismatch — one more reason to re-save as v3).
///
/// Thread count precedence: the header records the writer's num_threads as
/// provenance only. The loader clamps it into [1, ThreadPool::kMaxWorkers]
/// before using it, and any registration with a BoostService overrides it
/// with the service's own Options::num_threads — service options win.

/// How to write a snapshot.
struct PoolSaveOptions {
  /// Codec applied to every arena section block (recorded per block in the
  /// directory). kNop keeps the file mmap-servable; kVarint shrinks it for
  /// cold storage at the cost of a decode-on-load into owned arenas.
  SnapshotCodec codec = SnapshotCodec::kNop;
  /// 3 writes the current format; 2 writes the legacy v2 stream format
  /// (which ignores `codec` — v2 has no codec seam).
  uint32_t format_version = 3;
};

/// What a save produced. num_samples is θ — every sampled PRR-graph,
/// boostable or not — so bytes_per_sample is comparable across modes.
struct PoolSaveResult {
  uint64_t file_bytes = 0;
  uint64_t num_samples = 0;
  double bytes_per_sample = 0.0;
};

/// How to load a snapshot.
struct PoolLoadOptions {
  /// Serve the arenas directly from an mmap of the file (v3 nop-coded
  /// full-mode snapshots only — anything else is a typed FailedPrecondition).
  /// Warm start becomes ~O(validate directory) instead of O(bytes), and the
  /// page cache shares the arena across every process mapping it.
  bool use_mmap = false;
  /// Also run the O(total_edges) deep walk (edge endpoints and critical ids
  /// in range) over the mapped sections. Off by default: the structural
  /// checks memory safety needs always run, and a host mapping its own
  /// snapshot gains little from re-walking every edge at the cost of paging
  /// the whole file in — which would defeat the point of mmap. Owned loads
  /// (and every codec decode) always validate deeply regardless. Also
  /// cross-checks the pool-level coverage section against the arenas'
  /// critical sets.
  bool verify_mapped = false;
  /// Prefault the mapping (MAP_POPULATE) so validation and first solves hit
  /// resident pages instead of taking one fault per 4 KiB. On by default —
  /// it turns hundreds of page faults into one syscall for warm-start-size
  /// pools. Turn it off to page lazily when the snapshot is larger than RAM
  /// (the scenario mmap serving exists for).
  bool prefault = true;
};

/// RAII read-only mmap of a snapshot file. External (mmap-backed) PrrStores
/// alias this memory, so the mapping must outlive every session serving from
/// it; the v3 mmap loader enforces that by handing the returned shared_ptr to
/// BoostSession::RetainResource, which transitively pins it for as long as
/// any pool entry holds the session.
class SnapshotMapping {
 public:
  /// `prefault` maps with MAP_POPULATE (where available): the whole file is
  /// paged in by one syscall instead of on-demand faults.
  static StatusOr<std::shared_ptr<SnapshotMapping>> Open(
      const std::string& path, bool prefault = false);

  SnapshotMapping(const SnapshotMapping&) = delete;
  SnapshotMapping& operator=(const SnapshotMapping&) = delete;
  ~SnapshotMapping();

  const char* data() const { return static_cast<const char*>(addr_); }
  size_t size() const { return len_; }

 private:
  SnapshotMapping(void* addr, size_t len) : addr_(addr), len_(len) {}

  void* addr_ = nullptr;
  size_t len_ = 0;
};

/// Writes the session's pool to `path`. The session must be prepared()
/// (BoostSession::SavePool prepares and delegates here).
StatusOr<PoolSaveResult> SavePoolSnapshot(const BoostSession& session,
                                          const std::string& path,
                                          const PoolSaveOptions& options);

/// Compatibility shim: v3 nop-coded save, discarding the result details.
Status SavePoolSnapshot(const BoostSession& session, const std::string& path);

/// Restores a session from a snapshot taken against a graph with the same
/// node count. Seeds and BoostOptions come from the snapshot; the returned
/// session is prepared() and never resamples.
StatusOr<std::unique_ptr<BoostSession>> LoadPoolSnapshot(
    const DirectedGraph& graph, const std::string& path,
    const PoolLoadOptions& options);

/// Compatibility shim: owned (copying) load with default options.
StatusOr<std::unique_ptr<BoostSession>> LoadPoolSnapshot(
    const DirectedGraph& graph, const std::string& path);

/// Zero-copy warm start: LoadPoolSnapshot with use_mmap = true.
StatusOr<std::unique_ptr<BoostSession>> MmapPool(const DirectedGraph& graph,
                                                 const std::string& path);

}  // namespace kboost

#endif  // KBOOST_IO_POOL_IO_H_
