#include "src/baselines/mc_greedy.h"

#include <algorithm>
#include <queue>

#include "src/sim/boost_model.h"
#include "src/util/logging.h"

namespace kboost {

McGreedyResult McGreedyBoost(const DirectedGraph& graph,
                             const std::vector<NodeId>& seeds,
                             const McGreedyOptions& options) {
  const size_t n = graph.num_nodes();
  KB_CHECK(options.k >= 1);
  const std::vector<uint8_t> seed_bm = MakeNodeBitmap(n, seeds);

  SimulationOptions sim;
  sim.num_simulations = options.num_simulations;
  sim.num_threads = options.num_threads;
  sim.seed = options.seed;

  McGreedyResult result;
  std::vector<NodeId> current;
  double current_boost = 0.0;

  auto boost_of = [&](const std::vector<NodeId>& set) {
    ++result.evaluations;
    return EstimateBoost(graph, seeds, set, sim, options.semantics).boost;
  };

  // CELF over marginal gains; initial gains are singleton boosts.
  struct Entry {
    double gain;
    NodeId node;
    uint32_t round;
  };
  auto cmp = [](const Entry& a, const Entry& b) { return a.gain < b.gain; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (NodeId v = 0; v < n; ++v) {
    if (seed_bm[v]) continue;
    // Cheap prefilter: nodes with no in-edges can never be boosted usefully
    // under the default semantics (nothing influences them).
    if (options.semantics == BoostSemantics::kBoostedAreEasierToInfluence &&
        graph.InDegree(v) == 0) {
      continue;
    }
    heap.push(Entry{boost_of({v}), v, 0});
  }

  uint32_t round = 0;
  std::vector<uint8_t> picked(n, 0);
  std::vector<NodeId> scratch_set;
  while (current.size() < options.k && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (picked[top.node]) continue;
    if (top.round != round) {
      scratch_set = current;
      scratch_set.push_back(top.node);
      const double gain = boost_of(scratch_set) - current_boost;
      heap.push(Entry{gain, top.node, round});
      continue;
    }
    if (top.gain <= 0.0) break;
    picked[top.node] = 1;
    current.push_back(top.node);
    current_boost += top.gain;
    ++round;
  }

  result.boost_set = std::move(current);
  result.estimated_boost = boost_of(result.boost_set);
  return result;
}

}  // namespace kboost
