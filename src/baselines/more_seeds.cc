#include "src/baselines/more_seeds.h"

#include <algorithm>
#include <cmath>

#include "src/im/coverage.h"
#include "src/im/rr_set.h"
#include "src/sim/boost_model.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace kboost {

std::vector<NodeId> SelectMoreSeeds(const DirectedGraph& graph,
                                    const std::vector<NodeId>& seeds,
                                    const ImmOptions& options) {
  const size_t n = graph.num_nodes();
  KB_CHECK(n >= 2);
  const std::vector<uint8_t> seed_bitmap = MakeNodeBitmap(n, seeds);
  const int threads = std::max(1, options.num_threads);

  CoverageSelector selector(n);

  auto ensure_samples = [&](size_t target) -> size_t {
    const size_t have = selector.num_sets();
    if (target <= have) return have;
    const size_t need = target - have;
    std::vector<std::vector<NodeId>> batch(need);
    std::vector<uint8_t> covered_by_s(need, 0);
    std::vector<RrScratch> scratch(threads);
    ParallelFor(need, threads, [&](size_t j, int t) {
      uint64_t s = options.seed;
      s ^= (have + j + 1) * 0x9E3779B97F4A7C15ULL;
      Rng rng(s);
      GenerateRandomRrSet(graph, rng, scratch[t], batch[j]);
      for (NodeId v : batch[j]) {
        if (seed_bitmap[v]) {
          covered_by_s[j] = 1;
          break;
        }
      }
    });
    for (size_t j = 0; j < need; ++j) {
      // RR-sets hit by existing seeds carry zero marginal value: keep them
      // in the denominator only.
      if (covered_by_s[j]) {
        selector.AddEmptySet();
      } else {
        selector.AddSet(batch[j]);
      }
    }
    return selector.num_sets();
  };
  auto select_coverage = [&]() -> double {
    return selector.SelectGreedy(options.k, &seed_bitmap).coverage_fraction;
  };

  ImmBounds bounds;
  bounds.epsilon = options.epsilon;
  bounds.ell =
      options.ell * (1.0 + std::log(2.0) / std::log(static_cast<double>(n)));
  bounds.n = n;
  bounds.k = options.k;
  RunImmSchedule(bounds,
                 ImmScheduleCallbacks{ensure_samples, select_coverage});

  return selector.SelectGreedy(options.k, &seed_bitmap).selected;
}

}  // namespace kboost
