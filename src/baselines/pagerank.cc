#include "src/baselines/pagerank.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/sim/boost_model.h"
#include "src/util/logging.h"

namespace kboost {

std::vector<double> InfluencePageRank(const DirectedGraph& graph,
                                      const PageRankOptions& options) {
  const size_t n = graph.num_nodes();
  KB_CHECK(n > 0);
  KB_CHECK(options.restart_probability > 0.0 &&
           options.restart_probability < 1.0);

  // ρ(a): total influence probability entering a. The walk at a moves to
  // its influencer b with probability p_ba / ρ(a) ("v votes for u").
  std::vector<double> rho(n, 0.0);
  for (NodeId a = 0; a < n; ++a) {
    for (const DirectedGraph::InEdge& e : graph.InEdges(a)) rho[a] += e.p;
  }

  std::vector<double> pr(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  const double restart = options.restart_probability;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (NodeId a = 0; a < n; ++a) {
      if (rho[a] <= 0.0) {
        dangling += pr[a];
        continue;
      }
      const double share = pr[a] / rho[a];
      for (const DirectedGraph::InEdge& e : graph.InEdges(a)) {
        next[e.from] += share * e.p;
      }
    }
    const double base =
        (restart + (1.0 - restart) * dangling) / static_cast<double>(n);
    double l1 = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      next[v] = base + (1.0 - restart) * next[v];
      l1 += std::abs(next[v] - pr[v]);
    }
    pr.swap(next);
    if (l1 <= options.tolerance) break;
  }
  return pr;
}

std::vector<NodeId> PageRankBoost(const DirectedGraph& graph,
                                  const std::vector<NodeId>& seeds, size_t k,
                                  const PageRankOptions& options) {
  const std::vector<double> pr = InfluencePageRank(graph, options);
  const std::vector<uint8_t> excluded =
      MakeNodeBitmap(graph.num_nodes(), seeds);

  std::vector<NodeId> order;
  order.reserve(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (!excluded[v]) order.push_back(v);
  }
  const size_t take = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&](NodeId a, NodeId b) { return pr[a] > pr[b]; });
  order.resize(take);
  return order;
}

}  // namespace kboost
