#ifndef KBOOST_BASELINES_MC_GREEDY_H_
#define KBOOST_BASELINES_MC_GREEDY_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/sim/ic_model.h"

namespace kboost {

/// Options for the Monte-Carlo greedy comparator.
struct McGreedyOptions {
  size_t k = 10;
  /// Simulations per marginal-gain evaluation. Coupled worlds keep the
  /// variance low, but this is still the expensive knob.
  size_t num_simulations = 2000;
  int num_threads = DefaultThreadCount();
  uint64_t seed = 42;
  BoostSemantics semantics = BoostSemantics::kBoostedAreEasierToInfluence;
};

/// Result of the Monte-Carlo greedy.
struct McGreedyResult {
  std::vector<NodeId> boost_set;
  double estimated_boost = 0.0;  ///< Δ̂_S(B) on the evaluation worlds
  size_t evaluations = 0;        ///< number of marginal-gain evaluations
};

/// The greedy-with-Monte-Carlo algorithm the paper declines to run at scale
/// ("extremely computationally expensive", Sec. VII). Provided as a small-
/// graph comparator: k rounds of CELF-style lazy greedy where each marginal
/// gain is a coupled-world simulation estimate. Note the paper's caveat
/// applies: Δ_S is non-submodular, so lazy pruning is a heuristic here —
/// gains are re-evaluated when popped, which is exact for the final pick
/// under monotone gains and near-exact otherwise.
McGreedyResult McGreedyBoost(const DirectedGraph& graph,
                             const std::vector<NodeId>& seeds,
                             const McGreedyOptions& options);

}  // namespace kboost

#endif  // KBOOST_BASELINES_MC_GREEDY_H_
