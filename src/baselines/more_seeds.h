#ifndef KBOOST_BASELINES_MORE_SEEDS_H_
#define KBOOST_BASELINES_MORE_SEEDS_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/im/imm.h"

namespace kboost {

/// MoreSeeds baseline (Sec. VII): the IMM framework adapted to pick k
/// *additional* seeds maximizing the marginal influence increase over the
/// existing seed set S; the k picks are then treated as boost nodes.
/// RR-sets already intersecting S are counted as pre-covered, so greedy
/// coverage maximizes exactly the marginal spread.
std::vector<NodeId> SelectMoreSeeds(const DirectedGraph& graph,
                                    const std::vector<NodeId>& seeds,
                                    const ImmOptions& options);

}  // namespace kboost

#endif  // KBOOST_BASELINES_MORE_SEEDS_H_
