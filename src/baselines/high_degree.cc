#include "src/baselines/high_degree.h"

#include <algorithm>
#include <queue>

#include "src/sim/boost_model.h"
#include "src/util/logging.h"

namespace kboost {

namespace {

/// Base (undiscounted) score of node v under `kind`.
double BaseScore(const DirectedGraph& graph, NodeId v, DegreeKind kind) {
  double score = 0.0;
  switch (kind) {
    case DegreeKind::kOutProbabilitySum:
    case DegreeKind::kOutProbabilitySumDiscount:
      for (const DirectedGraph::OutEdge& e : graph.OutEdges(v)) score += e.p;
      break;
    case DegreeKind::kInBoostGapSum:
    case DegreeKind::kInBoostGapSumDiscount:
      for (const DirectedGraph::InEdge& e : graph.InEdges(v)) {
        score += static_cast<double>(e.p_boost) - e.p;
      }
      break;
  }
  return score;
}

bool IsDiscounted(DegreeKind kind) {
  return kind == DegreeKind::kOutProbabilitySumDiscount ||
         kind == DegreeKind::kInBoostGapSumDiscount;
}

/// Greedy highest-score selection over `candidates`. For the discounted
/// kinds, picking v removes the contribution of edges between v and already
/// picked nodes; scores only decrease, so CELF-style lazy re-evaluation is
/// exact.
std::vector<NodeId> SelectByScore(const DirectedGraph& graph,
                                  const std::vector<NodeId>& candidates,
                                  const std::vector<uint8_t>& excluded,
                                  size_t k, DegreeKind kind) {
  struct Entry {
    double score;
    NodeId node;
    uint32_t round;
  };
  auto cmp = [](const Entry& a, const Entry& b) { return a.score < b.score; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (NodeId v : candidates) {
    if (!excluded[v]) heap.push(Entry{BaseScore(graph, v, kind), v, 0});
  }

  std::vector<uint8_t> picked(graph.num_nodes(), 0);
  std::vector<NodeId> result;
  const bool discounted = IsDiscounted(kind);
  uint32_t round = 0;
  auto rescore = [&](NodeId v) -> double {
    double score = 0.0;
    switch (kind) {
      case DegreeKind::kOutProbabilitySumDiscount:
        for (const DirectedGraph::OutEdge& e : graph.OutEdges(v)) {
          if (!picked[e.to]) score += e.p;
        }
        break;
      case DegreeKind::kInBoostGapSumDiscount:
        for (const DirectedGraph::InEdge& e : graph.InEdges(v)) {
          if (!picked[e.from]) {
            score += static_cast<double>(e.p_boost) - e.p;
          }
        }
        break;
      default:
        score = BaseScore(graph, v, kind);
    }
    return score;
  };

  while (result.size() < k && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (picked[top.node]) continue;
    if (discounted && top.round != round) {
      heap.push(Entry{rescore(top.node), top.node, round});
      continue;
    }
    picked[top.node] = 1;
    result.push_back(top.node);
    ++round;
  }
  return result;
}

/// Candidates ordered ring by ring outward from the seeds (union of in- and
/// out-neighbourhoods, since boosting both attracts and relays influence).
std::vector<std::vector<NodeId>> NeighborhoodRings(
    const DirectedGraph& graph, const std::vector<NodeId>& seeds) {
  const size_t n = graph.num_nodes();
  std::vector<int> ring(n, -1);
  std::vector<NodeId> frontier;
  for (NodeId s : seeds) {
    if (ring[s] < 0) {
      ring[s] = 0;
      frontier.push_back(s);
    }
  }
  std::vector<std::vector<NodeId>> rings;
  int depth = 0;
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (NodeId u : frontier) {
      for (const DirectedGraph::OutEdge& e : graph.OutEdges(u)) {
        if (ring[e.to] < 0) {
          ring[e.to] = depth + 1;
          next.push_back(e.to);
        }
      }
      for (const DirectedGraph::InEdge& e : graph.InEdges(u)) {
        if (ring[e.from] < 0) {
          ring[e.from] = depth + 1;
          next.push_back(e.from);
        }
      }
    }
    ++depth;
    if (next.empty()) break;
    rings.push_back(next);
    frontier = rings.back();
  }
  return rings;
}

}  // namespace

std::vector<NodeId> HighDegreeGlobal(const DirectedGraph& graph,
                                     const std::vector<NodeId>& seeds,
                                     size_t k, DegreeKind kind) {
  std::vector<uint8_t> excluded = MakeNodeBitmap(graph.num_nodes(), seeds);
  std::vector<NodeId> candidates(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) candidates[v] = v;
  return SelectByScore(graph, candidates, excluded, k, kind);
}

std::vector<NodeId> HighDegreeLocal(const DirectedGraph& graph,
                                    const std::vector<NodeId>& seeds,
                                    size_t k, DegreeKind kind) {
  std::vector<uint8_t> excluded = MakeNodeBitmap(graph.num_nodes(), seeds);
  std::vector<NodeId> result;
  for (const std::vector<NodeId>& ring : NeighborhoodRings(graph, seeds)) {
    if (result.size() >= k) break;
    std::vector<NodeId> picked =
        SelectByScore(graph, ring, excluded, k - result.size(), kind);
    for (NodeId v : picked) {
      excluded[v] = 1;  // no double-selection in later rings
      result.push_back(v);
    }
  }
  return result;
}

std::vector<std::vector<NodeId>> HighDegreeGlobalAll(
    const DirectedGraph& graph, const std::vector<NodeId>& seeds, size_t k) {
  std::vector<std::vector<NodeId>> out;
  for (DegreeKind kind :
       {DegreeKind::kOutProbabilitySum, DegreeKind::kOutProbabilitySumDiscount,
        DegreeKind::kInBoostGapSum, DegreeKind::kInBoostGapSumDiscount}) {
    out.push_back(HighDegreeGlobal(graph, seeds, k, kind));
  }
  return out;
}

std::vector<std::vector<NodeId>> HighDegreeLocalAll(
    const DirectedGraph& graph, const std::vector<NodeId>& seeds, size_t k) {
  std::vector<std::vector<NodeId>> out;
  for (DegreeKind kind :
       {DegreeKind::kOutProbabilitySum, DegreeKind::kOutProbabilitySumDiscount,
        DegreeKind::kInBoostGapSum, DegreeKind::kInBoostGapSumDiscount}) {
    out.push_back(HighDegreeLocal(graph, seeds, k, kind));
  }
  return out;
}

}  // namespace kboost
