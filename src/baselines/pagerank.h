#ifndef KBOOST_BASELINES_PAGERANK_H_
#define KBOOST_BASELINES_PAGERANK_H_

#include <vector>

#include "src/graph/graph.h"

namespace kboost {

/// Parameters of the PageRank baseline (Sec. VII): influence-weighted
/// transition probabilities with restart 0.15, iterated until consecutive
/// vectors differ by at most `tolerance` in L1 norm.
struct PageRankOptions {
  double restart_probability = 0.15;
  double tolerance = 1e-4;
  int max_iterations = 1000;
};

/// Influence-weighted PageRank scores: when u influences v, v "votes" for u,
/// i.e. the walk moves along edge e_uv *backwards* with probability
/// p_uv / ρ(u), where ρ(u) is the total incoming influence probability of u.
std::vector<double> InfluencePageRank(const DirectedGraph& graph,
                                      const PageRankOptions& options = {});

/// The PageRank baseline: the k highest-scoring non-seed nodes.
std::vector<NodeId> PageRankBoost(const DirectedGraph& graph,
                                  const std::vector<NodeId>& seeds, size_t k,
                                  const PageRankOptions& options = {});

}  // namespace kboost

#endif  // KBOOST_BASELINES_PAGERANK_H_
