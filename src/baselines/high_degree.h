#ifndef KBOOST_BASELINES_HIGH_DEGREE_H_
#define KBOOST_BASELINES_HIGH_DEGREE_H_

#include <vector>

#include "src/graph/graph.h"

namespace kboost {

/// The four weighted-degree definitions of the HighDegree baselines
/// (Sec. VII "Baselines").
enum class DegreeKind {
  kOutProbabilitySum,          ///< Σ_{e_uv} p_uv
  kOutProbabilitySumDiscount,  ///< Σ_{e_uv, v∉B} p_uv
  kInBoostGapSum,              ///< Σ_{e_vu} (p'_vu − p_vu)
  kInBoostGapSumDiscount,      ///< Σ_{e_vu, v∉B} (p'_vu − p_vu)
};

/// HighDegreeGlobal with one degree definition: repeatedly add the non-seed
/// node of highest (possibly discounted) weighted degree.
std::vector<NodeId> HighDegreeGlobal(const DirectedGraph& graph,
                                     const std::vector<NodeId>& seeds,
                                     size_t k, DegreeKind kind);

/// HighDegreeLocal: same scoring, but candidates are taken ring by ring —
/// first direct neighbours of seeds, then 2-hop neighbours, and so on until
/// k nodes are found.
std::vector<NodeId> HighDegreeLocal(const DirectedGraph& graph,
                                    const std::vector<NodeId>& seeds,
                                    size_t k, DegreeKind kind);

/// All four degree definitions for Global (resp. Local); the experiment
/// harness evaluates each candidate set and reports the best, exactly as the
/// paper does.
std::vector<std::vector<NodeId>> HighDegreeGlobalAll(
    const DirectedGraph& graph, const std::vector<NodeId>& seeds, size_t k);
std::vector<std::vector<NodeId>> HighDegreeLocalAll(
    const DirectedGraph& graph, const std::vector<NodeId>& seeds, size_t k);

}  // namespace kboost

#endif  // KBOOST_BASELINES_HIGH_DEGREE_H_
