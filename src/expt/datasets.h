#ifndef KBOOST_EXPT_DATASETS_H_
#define KBOOST_EXPT_DATASETS_H_

#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace kboost {

/// Specification of a synthetic stand-in for one of the paper's datasets.
/// The topology is directed preferential attachment matched to (n, m); edge
/// probabilities are Exponential with the mean calibrated so that the
/// *capped* distribution hits the paper's average influence probability
/// (Table 1). See DESIGN.md §3 for why this preserves the experiments'
/// shape.
struct DatasetSpec {
  std::string name;
  NodeId num_nodes = 0;
  size_t num_edges = 0;
  double avg_probability = 0.1;
  double reciprocity = 0.2;
  double beta = 2.0;  ///< p' = 1 - (1-p)^beta
  uint64_t seed = 2017;
};

/// A realized dataset.
struct Dataset {
  std::string name;
  DirectedGraph graph;
};

/// The four stand-ins (digg, flixster, twitter, flickr) at `scale` times the
/// paper's node/edge counts. scale = 1 reproduces paper-scale sizes;
/// the benches default to a laptop-friendly fraction.
std::vector<DatasetSpec> PaperDatasetSpecs(double scale, double beta = 2.0);

/// Builds the graph for a spec.
Dataset MakeDataset(const DatasetSpec& spec);

/// Convenience: spec by name ("digg" | "flixster" | "twitter" | "flickr").
DatasetSpec SpecByName(const std::string& name, double scale,
                       double beta = 2.0);

/// Solves m* (1 - exp(-1/m*)) = target for the exponential mean so the
/// capped-at-1 draw matches the requested average probability. Exposed for
/// testing.
double CalibrateExponentialMean(double target_mean);

}  // namespace kboost

#endif  // KBOOST_EXPT_DATASETS_H_
