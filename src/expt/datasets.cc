#include "src/expt/datasets.h"

#include <algorithm>
#include <cmath>

#include "src/graph/generators.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace kboost {

std::vector<DatasetSpec> PaperDatasetSpecs(double scale, double beta) {
  KB_CHECK(scale > 0.0 && scale <= 1.0);
  // Paper Table 1: n, m, average influence probability.
  struct Raw {
    const char* name;
    size_t n, m;
    double p;
    uint64_t seed;
  };
  static constexpr Raw kRaw[] = {
      {"digg", 28'000, 200'000, 0.239, 11},
      {"flixster", 96'000, 485'000, 0.228, 13},
      {"twitter", 323'000, 2'140'000, 0.608, 17},
      {"flickr", 1'450'000, 2'150'000, 0.013, 19},
  };
  std::vector<DatasetSpec> specs;
  for (const Raw& r : kRaw) {
    DatasetSpec spec;
    spec.name = r.name;
    spec.num_nodes = static_cast<NodeId>(
        std::max<size_t>(100, static_cast<size_t>(r.n * scale)));
    spec.num_edges = std::max<size_t>(
        spec.num_nodes, static_cast<size_t>(r.m * scale));
    spec.avg_probability = r.p;
    spec.beta = beta;
    spec.seed = r.seed;
    specs.push_back(spec);
  }
  return specs;
}

DatasetSpec SpecByName(const std::string& name, double scale, double beta) {
  for (DatasetSpec& spec : PaperDatasetSpecs(scale, beta)) {
    if (spec.name == name) return spec;
  }
  KB_CHECK(false) << "unknown dataset: " << name;
  return {};
}

double CalibrateExponentialMean(double target_mean) {
  KB_CHECK(target_mean > 0.0 && target_mean < 1.0);
  // E[min(Exp(m), 1)] = m (1 - e^{-1/m}), increasing in m: bisect.
  double lo = target_mean, hi = 50.0;
  for (int iter = 0; iter < 200; ++iter) {
    double m = 0.5 * (lo + hi);
    double value = m * (1.0 - std::exp(-1.0 / m));
    if (value < target_mean) {
      lo = m;
    } else {
      hi = m;
    }
  }
  return 0.5 * (lo + hi);
}

Dataset MakeDataset(const DatasetSpec& spec) {
  Rng rng(spec.seed);
  const double out_degree =
      std::max(0.5, static_cast<double>(spec.num_edges) /
                        (static_cast<double>(spec.num_nodes) *
                         (1.0 + spec.reciprocity)));
  GraphBuilder builder = BuildPreferentialAttachment(
      spec.num_nodes, out_degree, spec.reciprocity, rng);
  builder.AssignExponentialProbabilities(
      CalibrateExponentialMean(spec.avg_probability), rng);
  builder.SetBoostWithBeta(spec.beta);
  Dataset dataset;
  dataset.name = spec.name;
  dataset.graph = std::move(builder).Build();
  return dataset;
}

}  // namespace kboost
