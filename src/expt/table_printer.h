#ifndef KBOOST_EXPT_TABLE_PRINTER_H_
#define KBOOST_EXPT_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace kboost {

/// Minimal fixed-width table printer for the benchmark harnesses, so every
/// bench binary prints its figure/table in the same aligned format.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("12.34").
std::string FormatDouble(double value, int precision = 2);
/// Seconds with adaptive precision.
std::string FormatSeconds(double seconds);
/// Bytes as a human-readable quantity ("1.25 GB").
std::string FormatBytes(size_t bytes);

}  // namespace kboost

#endif  // KBOOST_EXPT_TABLE_PRINTER_H_
