#include "src/expt/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "src/util/logging.h"

namespace kboost {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  KB_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, header has "
      << headers_.size();
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = headers_.size() - 1;
  for (size_t w : width) total += w + 1;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 0.1) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

std::string FormatBytes(size_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (b >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fGB", b / 1e9);
  } else if (b >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fMB", b / 1e6);
  } else if (b >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", b / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return buf;
}

}  // namespace kboost
