#include "src/expt/budget.h"

#include <algorithm>
#include <cmath>

#include "src/expt/seed_selection.h"
#include "src/sim/boost_model.h"
#include "src/util/logging.h"

namespace kboost {

std::vector<BudgetAllocationPoint> RunBudgetAllocation(
    const DirectedGraph& graph, const BudgetAllocationOptions& options) {
  std::vector<BudgetAllocationPoint> points;
  for (double fraction : options.seed_fractions) {
    KB_CHECK(fraction > 0.0 && fraction <= 1.0);
    BudgetAllocationPoint point;
    point.seed_fraction = fraction;
    point.num_seeds = std::max<size_t>(
        1, static_cast<size_t>(std::lround(fraction * options.max_seeds)));
    const double leftover =
        static_cast<double>(options.max_seeds - point.num_seeds);
    point.num_boosted =
        static_cast<size_t>(std::lround(leftover * options.cost_ratio));

    std::vector<NodeId> seeds = SelectInfluentialSeeds(
        graph, point.num_seeds, options.boost_options.seed,
        options.boost_options.num_threads);

    std::vector<NodeId> boosted;
    if (point.num_boosted > 0) {
      BoostOptions bopts = options.boost_options;
      bopts.k = point.num_boosted;
      boosted = PrrBoost(graph, seeds, bopts).best_set;
    }
    point.boosted_spread =
        EstimateBoostedSpread(graph, seeds, boosted, options.sim_options)
            .mean;
    points.push_back(point);
  }
  return points;
}

}  // namespace kboost
