#include "src/expt/budget.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/core/boost_session.h"
#include "src/expt/seed_selection.h"
#include "src/sim/boost_model.h"
#include "src/util/logging.h"

namespace kboost {

std::vector<BudgetAllocationPoint> RunBudgetAllocation(
    const DirectedGraph& graph, const BudgetAllocationOptions& options) {
  KB_CHECK(!options.cost_ratios.empty());
  const size_t num_ratios = options.cost_ratios.size();
  std::vector<std::vector<BudgetAllocationPoint>> by_ratio(num_ratios);

  for (double fraction : options.seed_fractions) {
    KB_CHECK(fraction > 0.0 && fraction <= 1.0);
    const size_t num_seeds = std::max<size_t>(
        1, static_cast<size_t>(std::lround(fraction * options.max_seeds)));
    const double leftover =
        static_cast<double>(options.max_seeds - num_seeds);

    std::vector<size_t> budgets(num_ratios);
    size_t budget_max = 0;
    for (size_t r = 0; r < num_ratios; ++r) {
      budgets[r] = static_cast<size_t>(
          std::lround(leftover * options.cost_ratios[r]));
      budget_max = std::max(budget_max, budgets[r]);
    }

    std::vector<NodeId> seeds = SelectInfluentialSeeds(
        graph, num_seeds, options.boost_options.seed,
        options.boost_options.num_threads);

    // One session per (graph, seed set): the PRR pool is sampled once at
    // the largest boosting budget any cost ratio needs; each ratio's boost
    // set is then selection-only on that shared pool.
    std::unique_ptr<BoostSession> session;
    if (budget_max > 0) {
      BoostOptions bopts = options.boost_options;
      bopts.k = budget_max;
      session = std::make_unique<BoostSession>(graph, seeds, bopts);
    }

    for (size_t r = 0; r < num_ratios; ++r) {
      BudgetAllocationPoint point;
      point.cost_ratio = options.cost_ratios[r];
      point.seed_fraction = fraction;
      point.num_seeds = num_seeds;
      point.num_boosted = budgets[r];
      std::vector<NodeId> boosted;
      if (point.num_boosted > 0) {
        boosted = session->SolveForBudget(point.num_boosted).best_set;
      }
      point.boosted_spread =
          EstimateBoostedSpread(graph, seeds, boosted, options.sim_options)
              .mean;
      by_ratio[r].push_back(point);
    }
  }

  std::vector<BudgetAllocationPoint> points;
  for (std::vector<BudgetAllocationPoint>& ratio_points : by_ratio) {
    points.insert(points.end(), ratio_points.begin(), ratio_points.end());
  }
  return points;
}

}  // namespace kboost
