#include "src/expt/seed_selection.h"

#include <algorithm>

#include "src/im/imm.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace kboost {

std::vector<NodeId> SelectInfluentialSeeds(const DirectedGraph& graph,
                                           size_t count, uint64_t seed,
                                           int num_threads) {
  ImmOptions options;
  options.k = count;
  options.epsilon = 0.5;
  options.ell = 1.0;
  options.seed = seed;
  options.num_threads = num_threads;
  return SelectSeedsImm(graph, options).seeds;
}

std::vector<NodeId> SelectRandomSeeds(const DirectedGraph& graph,
                                      size_t count, uint64_t seed) {
  const size_t n = graph.num_nodes();
  KB_CHECK(count <= n);
  Rng rng(seed);
  std::vector<NodeId> pool(n);
  for (NodeId v = 0; v < n; ++v) pool[v] = v;
  std::vector<NodeId> seeds;
  seeds.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t j = i + rng.NextBounded(n - i);
    std::swap(pool[i], pool[j]);
    seeds.push_back(pool[i]);
  }
  std::sort(seeds.begin(), seeds.end());
  return seeds;
}

}  // namespace kboost
