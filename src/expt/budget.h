#ifndef KBOOST_EXPT_BUDGET_H_
#define KBOOST_EXPT_BUDGET_H_

#include <vector>

#include "src/core/prr_boost.h"
#include "src/graph/graph.h"
#include "src/sim/ic_model.h"

namespace kboost {

/// One point of the budget-allocation curves (Fig. 13): spend
/// `seed_fraction` of the budget on initial adopters, the rest on boosting,
/// with one seed trading for `cost_ratio` boosts.
struct BudgetAllocationPoint {
  double cost_ratio = 0.0;
  double seed_fraction = 0.0;
  size_t num_seeds = 0;
  size_t num_boosted = 0;
  double boosted_spread = 0.0;  ///< Monte-Carlo σ_S(B)
};

/// Parameters of the experiment: all-budget-on-seeds buys `max_seeds`
/// seeds; one seed costs `cost_ratios[r]` boosts. All ratios are swept in
/// one call so the per-(fraction, seed set) work is shared.
struct BudgetAllocationOptions {
  size_t max_seeds = 100;
  std::vector<double> cost_ratios = {100.0};
  std::vector<double> seed_fractions = {0.2, 0.4, 0.6, 0.8, 1.0};
  BoostOptions boost_options;
  SimulationOptions sim_options;
};

/// For each split: IMM picks the seeds, PRR-Boost picks the boosted users,
/// Monte Carlo evaluates the boosted spread (the paper's heuristic of
/// Sec. V-D). Each (graph, seed set) drives ONE BoostSession sampled at the
/// largest boosting budget any cost ratio needs; every ratio's answer is
/// selection-only on that shared pool instead of a fresh PrrBoost() run.
/// Points are returned ratio-major, fractions in input order within a ratio.
std::vector<BudgetAllocationPoint> RunBudgetAllocation(
    const DirectedGraph& graph, const BudgetAllocationOptions& options);

}  // namespace kboost

#endif  // KBOOST_EXPT_BUDGET_H_
