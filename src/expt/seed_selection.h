#ifndef KBOOST_EXPT_SEED_SELECTION_H_
#define KBOOST_EXPT_SEED_SELECTION_H_

#include <vector>

#include "src/graph/graph.h"

namespace kboost {

/// The paper's two seed setups (Sec. VII): influential seeds chosen by IMM
/// (carefully targeted initial adopters) and uniform random seeds
/// (spontaneous adopters).
std::vector<NodeId> SelectInfluentialSeeds(const DirectedGraph& graph,
                                           size_t count, uint64_t seed,
                                           int num_threads);

std::vector<NodeId> SelectRandomSeeds(const DirectedGraph& graph,
                                      size_t count, uint64_t seed);

}  // namespace kboost

#endif  // KBOOST_EXPT_SEED_SELECTION_H_
