#include "src/im/rr_set.h"

#include <algorithm>

#include "src/util/logging.h"

namespace kboost {

void RrScratch::Prepare(size_t num_nodes) {
  if (visit_mark.size() < num_nodes) {
    visit_mark.assign(num_nodes, 0);
    stamp = 0;
  }
  ++stamp;
  if (stamp == 0) {
    std::fill(visit_mark.begin(), visit_mark.end(), 0);
    stamp = 1;
  }
}

size_t GenerateRrSet(const DirectedGraph& graph, NodeId root, Rng& rng,
                     RrScratch& scratch, std::vector<NodeId>& out) {
  KB_DCHECK(root < graph.num_nodes());
  scratch.Prepare(graph.num_nodes());
  auto& mark = scratch.visit_mark;
  auto& candidates = scratch.candidates;
  const uint32_t stamp = scratch.stamp;

  size_t first = out.size();
  out.push_back(root);
  mark[root] = stamp;
  size_t edges_examined = 0;
  for (size_t head = first; head < out.size(); ++head) {
    NodeId v = out[head];
    const std::span<const DirectedGraph::InEdge> in_edges = graph.InEdges(v);
    const std::span<const DirectedGraph::InThreshold> thresholds =
        graph.InThresholds(v);
    const size_t degree = in_edges.size();
    edges_examined += degree;
    // Sized per node, not per graph: one scratch may serve graphs with
    // different degree distributions.
    if (candidates.size() < degree) candidates.resize(degree);
    // Branchless prefilter: collect in-edge slots whose source is unmarked.
    // The draw loop rechecks the mark (its branch is then almost always
    // not-taken, only parallel edges flip it), so the set and order of RNG
    // draws — one per unmarked source, Bernoulli(p) — is exactly the same
    // as the naive check-then-draw loop.
    size_t count = 0;
    for (size_t i = 0; i < degree; ++i) {
      candidates[count] = static_cast<uint32_t>(i);
      count += mark[in_edges[i].from] != stamp;
    }
    for (size_t s = 0; s < count; ++s) {
      const uint32_t i = candidates[s];
      const NodeId from = in_edges[i].from;
      if (mark[from] == stamp) continue;  // marked by a parallel edge
      if ((rng.NextU64() >> 11) < thresholds[i].p) {
        mark[from] = stamp;
        out.push_back(from);
      }
    }
  }
  return edges_examined;
}

size_t GenerateRandomRrSet(const DirectedGraph& graph, Rng& rng,
                           RrScratch& scratch, std::vector<NodeId>& out) {
  NodeId root = static_cast<NodeId>(rng.NextBounded(graph.num_nodes()));
  return GenerateRrSet(graph, root, rng, scratch, out);
}

}  // namespace kboost
