#include "src/im/rr_set.h"

#include <algorithm>

#include "src/util/logging.h"

namespace kboost {

void RrScratch::Prepare(size_t num_nodes) {
  if (visit_mark.size() < num_nodes) {
    visit_mark.assign(num_nodes, 0);
    stamp = 0;
  }
  ++stamp;
  if (stamp == 0) {
    std::fill(visit_mark.begin(), visit_mark.end(), 0);
    stamp = 1;
  }
}

size_t GenerateRrSet(const DirectedGraph& graph, NodeId root, Rng& rng,
                     RrScratch& scratch, std::vector<NodeId>& out) {
  KB_DCHECK(root < graph.num_nodes());
  scratch.Prepare(graph.num_nodes());
  auto& mark = scratch.visit_mark;
  const uint32_t stamp = scratch.stamp;

  size_t first = out.size();
  out.push_back(root);
  mark[root] = stamp;
  size_t edges_examined = 0;
  for (size_t head = first; head < out.size(); ++head) {
    NodeId v = out[head];
    for (const DirectedGraph::InEdge& e : graph.InEdges(v)) {
      ++edges_examined;
      if (mark[e.from] == stamp) continue;
      if (rng.NextBernoulli(e.p)) {
        mark[e.from] = stamp;
        out.push_back(e.from);
      }
    }
  }
  return edges_examined;
}

size_t GenerateRandomRrSet(const DirectedGraph& graph, Rng& rng,
                           RrScratch& scratch, std::vector<NodeId>& out) {
  NodeId root = static_cast<NodeId>(rng.NextBounded(graph.num_nodes()));
  return GenerateRrSet(graph, root, rng, scratch, out);
}

}  // namespace kboost
