#include "src/im/coverage.h"

#include <algorithm>

#include "src/select/greedy.h"
#include "src/util/logging.h"

namespace kboost {

CoverageSelector::CoverageSelector(size_t num_nodes)
    : num_nodes_(num_nodes) {}

void CoverageSelector::AddSet(std::span<const NodeId> nodes) {
  KB_CHECK(!external_) << "AddSet on an externally bound selector";
#ifndef NDEBUG
  for (NodeId v : nodes) KB_DCHECK(v < num_nodes_);
#endif
  set_nodes_.insert(set_nodes_.end(), nodes.begin(), nodes.end());
  set_offsets_.push_back(set_nodes_.size());
  ++num_sets_;
  index_built_ = false;
}

NodeId* CoverageSelector::AppendSets(std::span<const uint32_t> sizes) {
  KB_CHECK(!external_) << "AppendSets on an externally bound selector";
  size_t total = 0;
  for (uint32_t s : sizes) total += s;
  const size_t base = set_nodes_.size();
  set_nodes_.resize(base + total);
  set_offsets_.reserve(set_offsets_.size() + sizes.size());
  size_t offset = base;
  for (uint32_t s : sizes) {
    offset += s;
    set_offsets_.push_back(offset);
  }
  num_sets_ += sizes.size();
  index_built_ = false;
  return set_nodes_.data() + base;
}

void CoverageSelector::BindExternalSets(std::span<const uint32_t> sizes,
                                        std::span<const NodeId> nodes) {
  KB_CHECK(set_nodes_.empty() && !external_)
      << "BindExternalSets over existing sample storage";
  external_ = true;
  ext_set_nodes_ = nodes;
  // One fused pass: prefix-sum straight into the offsets table (this runs
  // on every mmap warm start, so no separate sum pass and no per-element
  // push_back bookkeeping).
  const size_t old_size = set_offsets_.size();
  set_offsets_.resize(old_size + sizes.size());
  size_t* out = set_offsets_.data() + old_size;
  size_t offset = 0;
  for (const uint32_t s : sizes) {
    offset += s;
    *out++ = offset;
  }
  KB_CHECK(offset == nodes.size())
      << "coverage sizes sum to " << offset << " but the bound node pool holds "
      << nodes.size();
  num_sets_ += sizes.size();
  index_built_ = false;
}

void CoverageSelector::EnsureIndex() const {
  if (index_built_) return;
  const std::span<const NodeId> nodes = flat_nodes();
  node_offsets_.assign(num_nodes_ + 1, 0);
  for (NodeId v : nodes) ++node_offsets_[v + 1];
  for (size_t v = 0; v < num_nodes_; ++v) {
    node_offsets_[v + 1] += node_offsets_[v];
  }
  node_sets_.resize(nodes.size());
  std::vector<size_t> cursor(node_offsets_.begin(), node_offsets_.end() - 1);
  const size_t sets = num_nonempty_sets();
  for (size_t i = 0; i < sets; ++i) {
    for (size_t s = set_offsets_[i]; s < set_offsets_[i + 1]; ++s) {
      node_sets_[cursor[nodes[s]]++] = static_cast<uint32_t>(i);
    }
  }
  index_built_ = true;
}

namespace {

/// Pull-model (CELF) oracle over the selector's inverted CSR: a gain is the
/// number of still-uncovered samples containing the candidate, recomputed
/// lazily when the shared greedy loop surfaces a stale heap entry.
class CoverageOracle final : public SelectionOracle {
 public:
  explicit CoverageOracle(const CoverageSelector& selector)
      : selector_(selector), covered_(selector.num_nonempty_sets(), 0) {}

  size_t num_candidates() const override { return selector_.num_nodes(); }
  uint64_t InitialGain(NodeId v) const override {
    return selector_.SetCount(v);
  }
  uint64_t CurrentGain(NodeId v) const override {
    uint64_t gain = 0;
    for (uint32_t set_id : selector_.SetsContaining(v)) {
      gain += !covered_[set_id];
    }
    return gain;
  }
  void Commit(NodeId v, std::vector<NodeId>* /*touched*/) override {
    for (uint32_t set_id : selector_.SetsContaining(v)) covered_[set_id] = 1;
  }

 private:
  const CoverageSelector& selector_;
  std::vector<uint8_t> covered_;
};

}  // namespace

CoverageSelector::Result CoverageSelector::SelectGreedy(
    size_t k, const std::vector<uint8_t>* excluded) const {
  Result result;
  if (k == 0 || num_sets_ == 0) return result;
  EnsureIndex();

  CoverageOracle oracle(*this);
  GreedyResult greedy = RunLazyGreedy(oracle, k, excluded);
  result.selected = std::move(greedy.selected);
  result.pick_gains = std::move(greedy.gains);
  result.covered_sets = greedy.total_gain;
  result.coverage_fraction =
      static_cast<double>(result.covered_sets) / static_cast<double>(num_sets_);
  return result;
}

}  // namespace kboost
