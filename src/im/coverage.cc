#include "src/im/coverage.h"

#include <algorithm>
#include <queue>

#include "src/util/logging.h"

namespace kboost {

CoverageSelector::CoverageSelector(size_t num_nodes)
    : num_nodes_(num_nodes) {}

void CoverageSelector::AddSet(std::span<const NodeId> nodes) {
#ifndef NDEBUG
  for (NodeId v : nodes) KB_DCHECK(v < num_nodes_);
#endif
  set_nodes_.insert(set_nodes_.end(), nodes.begin(), nodes.end());
  set_offsets_.push_back(set_nodes_.size());
  ++num_sets_;
  index_built_ = false;
}

void CoverageSelector::EnsureIndex() const {
  if (index_built_) return;
  node_offsets_.assign(num_nodes_ + 1, 0);
  for (NodeId v : set_nodes_) ++node_offsets_[v + 1];
  for (size_t v = 0; v < num_nodes_; ++v) {
    node_offsets_[v + 1] += node_offsets_[v];
  }
  node_sets_.resize(set_nodes_.size());
  std::vector<size_t> cursor(node_offsets_.begin(), node_offsets_.end() - 1);
  const size_t sets = num_nonempty_sets();
  for (size_t i = 0; i < sets; ++i) {
    for (size_t s = set_offsets_[i]; s < set_offsets_[i + 1]; ++s) {
      node_sets_[cursor[set_nodes_[s]]++] = static_cast<uint32_t>(i);
    }
  }
  index_built_ = true;
}

CoverageSelector::Result CoverageSelector::SelectGreedy(
    size_t k, const std::vector<uint8_t>* excluded) const {
  Result result;
  if (k == 0 || num_sets_ == 0) return result;
  EnsureIndex();

  const size_t n = num_nodes_;
  std::vector<uint8_t> covered(num_nonempty_sets(), 0);

  // CELF lazy greedy: stale gains are re-evaluated only when popped.
  struct Entry {
    size_t gain;
    NodeId node;
    uint32_t round;
  };
  auto cmp = [](const Entry& a, const Entry& b) { return a.gain < b.gain; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (NodeId v = 0; v < n; ++v) {
    if (excluded != nullptr && (*excluded)[v]) continue;
    const size_t count = node_offsets_[v + 1] - node_offsets_[v];
    if (count > 0) heap.push(Entry{count, v, 0});
  }

  uint32_t round = 0;
  std::vector<uint8_t> picked(n, 0);
  while (result.selected.size() < k && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (picked[top.node]) continue;
    if (top.round != round) {
      // Re-evaluate against current coverage.
      size_t gain = 0;
      for (uint32_t set_id : SetsContaining(top.node)) {
        if (!covered[set_id]) ++gain;
      }
      if (gain == 0) continue;
      heap.push(Entry{gain, top.node, round});
      continue;
    }
    // Fresh maximum: commit.
    picked[top.node] = 1;
    result.selected.push_back(top.node);
    for (uint32_t set_id : SetsContaining(top.node)) {
      if (!covered[set_id]) {
        covered[set_id] = 1;
        ++result.covered_sets;
      }
    }
    ++round;
  }

  result.coverage_fraction =
      static_cast<double>(result.covered_sets) / static_cast<double>(num_sets_);
  return result;
}

}  // namespace kboost
