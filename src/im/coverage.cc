#include "src/im/coverage.h"

#include <algorithm>
#include <queue>

#include "src/util/logging.h"

namespace kboost {

CoverageSelector::CoverageSelector(size_t num_nodes)
    : node_to_sets_(num_nodes) {}

void CoverageSelector::AddSet(std::span<const NodeId> nodes) {
  const uint32_t set_id = static_cast<uint32_t>(set_offsets_.size() - 1);
  for (NodeId v : nodes) {
    KB_DCHECK(v < node_to_sets_.size());
    set_nodes_.push_back(v);
    node_to_sets_[v].push_back(set_id);
  }
  set_offsets_.push_back(set_nodes_.size());
  ++num_sets_;
}

CoverageSelector::Result CoverageSelector::SelectGreedy(
    size_t k, const std::vector<uint8_t>* excluded) const {
  Result result;
  if (k == 0 || num_sets_ == 0) return result;

  const size_t n = node_to_sets_.size();
  std::vector<uint8_t> covered(num_nonempty_sets(), 0);

  // CELF lazy greedy: stale gains are re-evaluated only when popped.
  struct Entry {
    size_t gain;
    NodeId node;
    uint32_t round;
  };
  auto cmp = [](const Entry& a, const Entry& b) { return a.gain < b.gain; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (NodeId v = 0; v < n; ++v) {
    if (excluded != nullptr && (*excluded)[v]) continue;
    if (!node_to_sets_[v].empty()) {
      heap.push(Entry{node_to_sets_[v].size(), v, 0});
    }
  }

  uint32_t round = 0;
  std::vector<uint8_t> picked(n, 0);
  while (result.selected.size() < k && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (picked[top.node]) continue;
    if (top.round != round) {
      // Re-evaluate against current coverage.
      size_t gain = 0;
      for (uint32_t set_id : node_to_sets_[top.node]) {
        if (!covered[set_id]) ++gain;
      }
      if (gain == 0) continue;
      heap.push(Entry{gain, top.node, round});
      continue;
    }
    // Fresh maximum: commit.
    picked[top.node] = 1;
    result.selected.push_back(top.node);
    for (uint32_t set_id : node_to_sets_[top.node]) {
      if (!covered[set_id]) {
        covered[set_id] = 1;
        ++result.covered_sets;
      }
    }
    ++round;
  }

  result.coverage_fraction =
      static_cast<double>(result.covered_sets) / static_cast<double>(num_sets_);
  return result;
}

}  // namespace kboost
