#include "src/im/imm.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "src/im/coverage.h"
#include "src/im/rr_set.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace kboost {

ImmResult SelectSeedsImm(const DirectedGraph& graph,
                         const ImmOptions& options) {
  const size_t n = graph.num_nodes();
  KB_CHECK(n >= 2);
  KB_CHECK(options.k >= 1 && options.k <= n);

  CoverageSelector selector(n);
  // Shared-state discipline of this sampler (mutex-free, so nothing here
  // carries a KB_GUARDED_BY): the only cross-thread write is this relaxed
  // statistics counter; every other structure below is either partitioned
  // per worker (shards, scratch, per-sample owner bytes — each index is
  // written by exactly one thread) or written only between ParallelFor
  // batches on the calling thread, whose fork/join edges order the accesses.
  std::atomic<size_t> edges_examined{0};
  // Clamped to 255 so the per-sample owner byte below cannot overflow.
  const int threads = std::max(1, std::min(options.num_threads, 255));

  // Thread-local RR-set shards: each worker appends its sets to one flat
  // nodes/offsets pool (no per-set vector), and shards are merged into the
  // selector in sample order so pools are thread-count independent.
  struct RrShard {
    std::vector<size_t> offsets{0};
    std::vector<NodeId> nodes;
    size_t edges = 0;
    void Clear() {
      offsets.assign(1, 0);
      nodes.clear();
      edges = 0;
    }
  };
  std::vector<RrShard> shards(threads);
  std::vector<RrScratch> scratch(threads);
  std::vector<uint8_t> owner;

  // Samples are seeded by global index so results are thread-count
  // independent.
  auto ensure_samples = [&](size_t target) -> size_t {
    const size_t have = selector.num_sets();
    if (target <= have) return have;
    const size_t need = target - have;

    for (RrShard& shard : shards) shard.Clear();
    owner.assign(need, 0);
    ParallelFor(need, threads, [&](size_t j, int t) {
      uint64_t s = options.seed;
      s ^= (have + j + 1) * 0x9E3779B97F4A7C15ULL;
      Rng rng(s);
      RrShard& shard = shards[t];
      shard.edges += GenerateRandomRrSet(graph, rng, scratch[t], shard.nodes);
      shard.offsets.push_back(shard.nodes.size());
      owner[j] = static_cast<uint8_t>(t);
    });
    std::vector<size_t> pos(threads, 0);
    for (size_t j = 0; j < need; ++j) {
      RrShard& shard = shards[owner[j]];
      const size_t r = pos[owner[j]]++;
      selector.AddSet(std::span<const NodeId>(
          shard.nodes.data() + shard.offsets[r],
          shard.offsets[r + 1] - shard.offsets[r]));
    }
    for (const RrShard& shard : shards) edges_examined += shard.edges;
    return selector.num_sets();
  };

  auto select_coverage = [&]() -> double {
    return selector.SelectGreedy(options.k).coverage_fraction;
  };

  // IMM's union bound over the ⌈log2 n⌉ phases: ℓ ← ℓ·(1 + log2/log n).
  ImmBounds bounds;
  bounds.epsilon = options.epsilon;
  bounds.ell = options.ell * (1.0 + std::log(2.0) / std::log(static_cast<double>(n)));
  bounds.n = n;
  bounds.k = options.k;

  ImmScheduleResult schedule = RunImmSchedule(
      bounds, ImmScheduleCallbacks{ensure_samples, select_coverage});

  CoverageSelector::Result sel = selector.SelectGreedy(options.k);
  ImmResult result;
  result.seeds = std::move(sel.selected);
  result.estimated_spread = static_cast<double>(n) * sel.coverage_fraction;
  result.num_rr_sets = schedule.num_samples;
  result.edges_examined = edges_examined.load();
  return result;
}

}  // namespace kboost
