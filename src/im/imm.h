#ifndef KBOOST_IM_IMM_H_
#define KBOOST_IM_IMM_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/select/imm_schedule.h"
#include "src/util/thread_pool.h"

namespace kboost {

/// Options for classic IMM seed selection. (The generic sampling-schedule
/// driver lives in src/select/imm_schedule.h, shared with PRR-Boost and
/// MoreSeeds.)
struct ImmOptions {
  size_t k = 50;
  double epsilon = 0.5;
  double ell = 1.0;
  uint64_t seed = 42;
  int num_threads = DefaultThreadCount();
};

/// Result of classic IMM seed selection.
struct ImmResult {
  std::vector<NodeId> seeds;
  double estimated_spread = 0.0;  ///< n · covered fraction
  size_t num_rr_sets = 0;
  size_t edges_examined = 0;      ///< total work, for EPT reporting
};

/// Influence maximization under the IC model: returns a (1 − 1/e − ε)
/// approximate seed set of size ≤ k with probability ≥ 1 − n^−ℓ.
/// Deterministic given options.seed, independent of thread count.
ImmResult SelectSeedsImm(const DirectedGraph& graph,
                         const ImmOptions& options);

}  // namespace kboost

#endif  // KBOOST_IM_IMM_H_
