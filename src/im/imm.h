#ifndef KBOOST_IM_IMM_H_
#define KBOOST_IM_IMM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/bounds.h"
#include "src/util/thread_pool.h"

namespace kboost {

/// Callbacks that let the generic IMM sampling schedule drive any
/// sample-and-cover maximization: classic RR-sets (influence maximization)
/// or PRR-graph critical sets (PRR-Boost's lower-bound maximization).
struct ImmScheduleCallbacks {
  /// Grows the sample pool to at least `target` samples; returns the new
  /// pool size.
  std::function<size_t(size_t target)> ensure_samples;
  /// Greedy-selects k candidates on the current pool and returns the covered
  /// fraction of *all* samples.
  std::function<double()> select_coverage;
};

/// Outcome of the sampling schedule.
struct ImmScheduleResult {
  size_t num_samples = 0;    ///< final pool size θ
  double opt_lower_bound = 0;///< LB on OPT established by the search phase
  int levels_used = 0;       ///< geometric-search iterations executed
};

/// IMM sampling phase (Tang et al., SIGMOD'15, Alg. 3): geometric search for
/// a lower bound on OPT with λ'(ε′)-sized pools, then a final pool of
/// λ*/LB samples. Callers pass the already-adjusted ℓ (e.g. ℓ(1+log3/log n)
/// for PRR-Boost per its Algorithm 2).
ImmScheduleResult RunImmSchedule(const ImmBounds& bounds,
                                 const ImmScheduleCallbacks& callbacks);

/// Options for classic IMM seed selection.
struct ImmOptions {
  size_t k = 50;
  double epsilon = 0.5;
  double ell = 1.0;
  uint64_t seed = 42;
  int num_threads = DefaultThreadCount();
};

/// Result of classic IMM seed selection.
struct ImmResult {
  std::vector<NodeId> seeds;
  double estimated_spread = 0.0;  ///< n · covered fraction
  size_t num_rr_sets = 0;
  size_t edges_examined = 0;      ///< total work, for EPT reporting
};

/// Influence maximization under the IC model: returns a (1 − 1/e − ε)
/// approximate seed set of size ≤ k with probability ≥ 1 − n^−ℓ.
/// Deterministic given options.seed, independent of thread count.
ImmResult SelectSeedsImm(const DirectedGraph& graph,
                         const ImmOptions& options);

}  // namespace kboost

#endif  // KBOOST_IM_IMM_H_
