#ifndef KBOOST_IM_RR_SET_H_
#define KBOOST_IM_RR_SET_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace kboost {

/// Reusable scratch for reverse-reachable-set generation (visited stamps
/// plus the branchless-scan candidate buffer).
class RrScratch {
 public:
  void Prepare(size_t num_nodes);

  std::vector<uint32_t> visit_mark;
  std::vector<uint32_t> candidates;  // unmarked in-edge slots of one node
  uint32_t stamp = 0;
};

/// Generates one Reverse-Reachable set for `root` under the IC model:
/// a backward BFS from root where each incoming edge (u -> v) is live
/// independently with probability p_uv. Appends the reached nodes
/// (including root) to `out`. Returns the number of edges examined (the
/// EPT contribution used in IMM's cost analysis).
size_t GenerateRrSet(const DirectedGraph& graph, NodeId root, Rng& rng,
                     RrScratch& scratch, std::vector<NodeId>& out);

/// Same with a uniformly random root.
size_t GenerateRandomRrSet(const DirectedGraph& graph, Rng& rng,
                           RrScratch& scratch, std::vector<NodeId>& out);

}  // namespace kboost

#endif  // KBOOST_IM_RR_SET_H_
