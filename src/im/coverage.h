#ifndef KBOOST_IM_COVERAGE_H_
#define KBOOST_IM_COVERAGE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/graph.h"

namespace kboost {

/// Greedy maximum-coverage engine shared by IMM (over RR-sets), PRR-Boost-LB
/// (over critical-node sets), and MoreSeeds (over marginal RR-sets).
///
/// Each sample is a set of node ids that "cover" it; selecting node v covers
/// every sample containing v. Samples may be empty — they still count in the
/// denominator of coverage fractions, which is how non-boostable PRR-graphs
/// and RR-sets already reached by existing seeds enter the estimates.
///
/// Storage is fully flat: samples are appended to one nodes/offsets pair,
/// and the node→samples inverted index is a CSR built lazily in a single
/// counting-sort pass over the appended nodes. Appending is therefore a
/// cheap bulk copy (no per-node vector growth), which is what makes merging
/// thread-local sampling shards allocation-free.
class CoverageSelector {
 public:
  explicit CoverageSelector(size_t num_nodes);

  /// Appends one sample set. Node ids must be < num_nodes and distinct.
  /// Invalidates the lazily-built inverted index. Aborts on a selector whose
  /// node pool is externally bound (BindExternalSets).
  void AddSet(std::span<const NodeId> nodes);
  /// Bulk-appends `sizes.size()` sets whose node counts the caller already
  /// knows, growing the flat pool once, and returns the base of the reserved
  /// node region: set i's nodes must be written at the prefix-sum offset of
  /// `sizes[0..i)`. The spans are disjoint, so the fill may run on many
  /// workers — this is the shard-merge path that replaces one serialized
  /// AddSet call per sample. Equivalent to AddSet called `sizes.size()`
  /// times in order (zero-size entries count as non-empty sets of size 0,
  /// exactly as AddSet({}) does).
  NodeId* AppendSets(std::span<const uint32_t> sizes);
  /// Binds the flat sample-node pool to externally owned read-only memory —
  /// the pre-translated coverage section of an mmap'd v3 pool snapshot —
  /// appending `sizes.size()` sets whose nodes are the consecutive
  /// prefix-sum spans of `nodes`, without copying a byte. Only the per-set
  /// offsets (O(sets)) are materialized. `nodes` must stay valid for the
  /// selector's lifetime (for a snapshot: as long as the SnapshotMapping
  /// lives), its ids must already be validated < num_nodes, and the sizes
  /// must sum to exactly nodes.size() (checked). A bound selector rejects
  /// further node-carrying appends (AddSet/AppendSets abort); empty sets may
  /// still be added.
  void BindExternalSets(std::span<const uint32_t> sizes,
                        std::span<const NodeId> nodes);
  /// Appends an empty sample (counts toward totals only).
  void AddEmptySet() { ++num_sets_; }
  /// Appends `count` empty samples at once (pool-snapshot restore).
  void AddEmptySets(size_t count) { num_sets_ += count; }

  size_t num_sets() const { return num_sets_; }
  size_t num_nonempty_sets() const { return set_offsets_.size() - 1; }
  size_t num_nodes() const { return num_nodes_; }

  /// Nodes of non-empty sample `i` (adapters and pool-snapshot IO).
  std::span<const NodeId> SetNodes(size_t i) const {
    return flat_nodes().subspan(set_offsets_[i],
                                set_offsets_[i + 1] - set_offsets_[i]);
  }

  /// True when the node pool is externally owned (BindExternalSets).
  bool external() const { return external_; }

  struct Result {
    std::vector<NodeId> selected;
    /// Sets newly covered by each pick (selection order); prefix sums give
    /// the coverage of every nested budget from one run.
    std::vector<uint64_t> pick_gains;
    size_t covered_sets = 0;
    /// covered_sets / num_sets (0 when no samples).
    double coverage_fraction = 0.0;
  };

  /// Greedily selects up to k nodes maximizing the number of covered samples
  /// — a pull-model (CELF) adapter over the shared src/select lazy-greedy
  /// engine. `excluded`, if non-null, is an n-sized bitmap of forbidden
  /// candidates (e.g. the seed set). Stops early when no remaining candidate
  /// covers anything new; ties break toward the smaller node id. Const: can
  /// be re-run with different k on the same samples.
  Result SelectGreedy(size_t k, const std::vector<uint8_t>* excluded = nullptr)
      const;

  /// Builds the node→samples CSR now if it is stale. The lazy build inside
  /// the const accessors is NOT thread-safe, so anything that hands this
  /// selector to concurrent readers (a prepared serving pool) must warm the
  /// index first — PrrCollection::WarmIndexes / BoostSession::Prepare do.
  void WarmIndex() const { EnsureIndex(); }

  /// Number of samples that contain node v (i.e. singleton coverage).
  size_t SetCount(NodeId v) const {
    EnsureIndex();
    return node_offsets_[v + 1] - node_offsets_[v];
  }

  /// Ids (into the non-empty sample numbering) of samples containing v.
  std::span<const uint32_t> SetsContaining(NodeId v) const {
    EnsureIndex();
    return {node_sets_.data() + node_offsets_[v],
            node_offsets_[v + 1] - node_offsets_[v]};
  }

 private:
  /// Builds the node→samples CSR in one counting-sort pass. Not thread-safe;
  /// call before handing spans to parallel readers.
  void EnsureIndex() const;

  /// The flat node pool, whichever mode owns it.
  std::span<const NodeId> flat_nodes() const {
    return external_ ? ext_set_nodes_ : std::span<const NodeId>(set_nodes_);
  }

  size_t num_nodes_;
  size_t num_sets_ = 0;
  // Flattened sample storage: nodes of sample i are
  // flat_nodes()[set_offsets_[i] .. set_offsets_[i+1]).
  std::vector<size_t> set_offsets_{0};
  std::vector<NodeId> set_nodes_;
  // External (view) mode: when external_ is set, set_nodes_ is empty and the
  // span below aliases memory owned elsewhere (an mmap'd snapshot's coverage
  // section). Same lifetime contract as PrrStore's external spans: the data
  // is trivially destructible, only reads must be fenced by the owner.
  bool external_ = false;
  std::span<const NodeId> ext_set_nodes_;
  // Lazily-built inverted CSR: samples containing node v are
  // node_sets_[node_offsets_[v] .. node_offsets_[v+1]).
  mutable std::vector<size_t> node_offsets_;
  mutable std::vector<uint32_t> node_sets_;
  mutable bool index_built_ = false;
};

}  // namespace kboost

#endif  // KBOOST_IM_COVERAGE_H_
