// Serving workflow: prepare a PRR pool once (the expensive part), snapshot
// it, warm-start a BoostService from the snapshot, and answer budget queries
// from several client threads at once — the read-mostly production shape the
// serving layer is built for. Every concurrent answer is checked against a
// serial run of the same query: prepared pools are immutable, so results are
// bit-identical no matter how many clients share them. The tail of the
// example shows the lifecycle surface: RefreshPool hot-swaps a rebuilt pool
// behind the live name (no query ever sees NotFound, responses carry the
// new version) and Stats() reports the traffic the service just served.

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/boost_session.h"
#include "src/expt/datasets.h"
#include "src/expt/seed_selection.h"
#include "src/serve/boost_service.h"

int main() {
  using namespace kboost;

  Dataset d = MakeDataset(SpecByName("digg", 0.02));
  const DirectedGraph& g = d.graph;
  std::vector<NodeId> seeds = SelectInfluentialSeeds(g, 10, 1, 0);

  // ---- Offline: prepare once, snapshot to disk ---------------------------
  const std::string pool_path = "/tmp/kboost_serving_pool.bin";
  BoostOptions opts;
  opts.k = 25;  // the pool budget: the largest k the pool can answer
  StatusOr<std::unique_ptr<BoostSession>> session =
      BoostSession::Create(g, seeds, opts);
  if (!session.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  if (Status s = (*session)->SavePool(pool_path); !s.ok()) {
    std::fprintf(stderr, "pool save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("prepared and saved pool (theta=%zu) to %s\n",
              (*session)->engine().collection().num_samples(),
              pool_path.c_str());

  // ---- Online: warm-start a service from the snapshot --------------------
  BoostService::Options service_options;
  service_options.warm_pools = {{"digg", pool_path}};
  StatusOr<std::unique_ptr<BoostService>> service_or =
      BoostService::Create(g, service_options);
  if (!service_or.ok()) {
    std::fprintf(stderr, "service start failed: %s\n",
                 service_or.status().ToString().c_str());
    return 1;
  }
  BoostService& service = **service_or;
  std::printf("service up with pools:");
  for (const std::string& name : service.PoolNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  // ---- Concurrent clients: mixed budgets and modes against one pool ------
  std::vector<BoostRequest> requests;
  for (size_t k : {5, 10, 15, 20, 25}) {
    BoostRequest full;
    full.pool = "digg";
    full.k = k;
    requests.push_back(full);
    BoostRequest cheap = full;  // the O(k) cached-order answer
    cheap.mode = SolveMode::kLbOnly;
    requests.push_back(cheap);
  }

  // Serial reference: prepared pools are immutable, so the concurrent
  // answers below must reproduce these bits exactly.
  std::vector<BoostResult> reference;
  {
    SolveContext context;
    for (const BoostRequest& request : requests) {
      StatusOr<BoostResponse> r = service.Solve(request, &context);
      if (!r.ok()) {
        std::fprintf(stderr, "serial query failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      reference.push_back(std::move(r).value().result);
    }
  }

  constexpr size_t kClients = 4;
  std::vector<std::vector<BoostResponse>> answers(kClients);
  std::atomic<size_t> errors{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SolveContext context;  // per-client scratch, kept warm across queries
      for (size_t i = c; i < requests.size(); i += kClients) {
        StatusOr<BoostResponse> r = service.Solve(requests[i], &context);
        if (!r.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       r.status().ToString().c_str());
          errors.fetch_add(1);
        } else {
          answers[c].push_back(std::move(r).value());
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  if (errors.load() != 0) return 1;

  size_t mismatches = 0;
  for (size_t c = 0; c < kClients; ++c) {
    size_t slot = 0;
    for (size_t i = c; i < requests.size(); i += kClients, ++slot) {
      const BoostResponse& r = answers[c][slot];
      if (r.result.best_set != reference[i].best_set ||
          r.result.best_estimate != reference[i].best_estimate) {
        ++mismatches;
      }
      std::printf(
          "client %zu: k=%2zu mode=%-6s boost %.2f in %.3fs "
          "(pool_budget=%zu, %s)\n",
          c, requests[i].k,
          requests[i].mode == SolveMode::kLbOnly ? "lb" : "auto",
          r.result.best_estimate, r.solve_seconds, r.result.pool_budget,
          r.result.pool_reused ? "pool reused" : "pool sampled");
    }
  }
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "%zu concurrent answers diverged from the serial run\n",
                 mismatches);
    return 1;
  }
  std::printf("\nall %zu concurrent answers bit-identical to the serial "
              "run\n",
              requests.size());

  // ---- Lifecycle: hot-swap a rebuilt pool behind the live name -----------
  // A production service rebuilds pools when the graph data or β changes;
  // RefreshPool prepares the replacement outside the registry lock and
  // swaps it atomically — in-flight queries finish on the old pool, new
  // queries answer from the new one, and the name never goes missing.
  const uint64_t v_before = service.PoolVersion("digg");
  BoostOptions rebuilt_opts = opts;
  rebuilt_opts.seed = 2026;  // e.g. fresher data or a new parameterization
  StatusOr<std::unique_ptr<BoostSession>> rebuilt =
      BoostSession::Create(g, seeds, rebuilt_opts);
  if (!rebuilt.ok()) return 1;
  if (Status s = service.RefreshPool("digg", std::move(*rebuilt)); !s.ok()) {
    std::fprintf(stderr, "refresh failed: %s\n", s.ToString().c_str());
    return 1;
  }
  StatusOr<BoostResponse> after = service.Solve(requests[0]);
  if (!after.ok()) return 1;
  std::printf("\nhot-swapped pool 'digg': version %llu -> %llu, next answer "
              "served from the new build (boost %.2f)\n",
              static_cast<unsigned long long>(v_before),
              static_cast<unsigned long long>(after->pool_version),
              after->result.best_estimate);

  // ---- Service metrics ---------------------------------------------------
  const ServiceStatsSnapshot stats = service.Stats();
  for (const PoolStatsSnapshot& p : stats.pools) {
    std::printf("stats: pool '%s' v%llu: %llu queries, %llu errors, "
                "%llu refreshes, latency ms mean/p50/p95 = "
                "%.3f/%.3f/%.3f\n",
                p.pool.c_str(), static_cast<unsigned long long>(p.version),
                static_cast<unsigned long long>(p.queries),
                static_cast<unsigned long long>(p.errors),
                static_cast<unsigned long long>(p.refreshes),
                p.latency_mean_ms, p.latency_p50_ms, p.latency_p95_ms);
  }
  return 0;
}
