// Quickstart: the paper's Figure-1 example, end to end.
//
// Builds the 3-node graph s -> v0 -> v1 from Fig. 1, checks the boosted
// spreads against the paper's numbers, then runs PRR-Boost on a small
// synthetic social network to pick k nodes to boost.

#include <cstdio>

#include "src/core/prr_boost.h"
#include "src/expt/datasets.h"
#include "src/expt/seed_selection.h"
#include "src/graph/graph_builder.h"
#include "src/sim/boost_model.h"

int main() {
  using namespace kboost;

  // ---- Figure 1: three nodes, two edges -----------------------------------
  GraphBuilder small(3);
  small.AddEdge(0, 1, 0.2, 0.4);  // s -> v0
  small.AddEdge(1, 2, 0.1, 0.2);  // v0 -> v1
  DirectedGraph fig1 = std::move(small).Build();
  const std::vector<NodeId> seeds = {0};

  std::printf("Figure 1 example (exact):\n");
  std::printf("  sigma_S(empty)    = %.4f (paper: 1.22)\n",
              ExactBoostedSpread(fig1, seeds, {}));
  std::printf("  Delta_S({v0})     = %.4f (paper: 0.22)\n",
              ExactBoost(fig1, seeds, {1}));
  std::printf("  Delta_S({v1})     = %.4f (paper: 0.02)\n",
              ExactBoost(fig1, seeds, {2}));
  std::printf("  Delta_S({v0,v1})  = %.4f (paper: 0.26)\n",
              ExactBoost(fig1, seeds, {1, 2}));

  // ---- PRR-Boost on a synthetic social network ----------------------------
  DatasetSpec spec = SpecByName("digg", /*scale=*/0.02);
  Dataset dataset = MakeDataset(spec);
  std::printf("\nDataset %s: n=%zu m=%zu avg_p=%.3f\n", dataset.name.c_str(),
              dataset.graph.num_nodes(), dataset.graph.num_edges(),
              dataset.graph.AverageProbability());

  std::vector<NodeId> influencers =
      SelectInfluentialSeeds(dataset.graph, 10, /*seed=*/7, /*threads=*/4);

  BoostOptions options;
  options.k = 20;
  options.epsilon = 0.5;
  BoostResult result = PrrBoost(dataset.graph, influencers, options);

  std::printf("PRR-Boost picked %zu nodes from %zu PRR-graphs "
              "(boostable: %zu)\n",
              result.best_set.size(), result.num_samples,
              result.num_boostable);
  std::printf("  estimated boost (PRR):  %.2f\n", result.best_estimate);

  BoostEstimate mc =
      EstimateBoost(dataset.graph, influencers, result.best_set, {});
  std::printf("  measured boost (MC):    %.2f +- %.2f\n", mc.boost,
              2 * mc.boost_stderr);
  std::printf("  spread: %.1f -> %.1f\n", mc.base_spread, mc.boosted_spread);
  return 0;
}
