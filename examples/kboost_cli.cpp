// kboost_cli — command-line front end for the library, for users who want
// to run the paper's algorithms on their own edge-list graphs without
// writing C++.
//
//   kboost_cli generate --dataset=digg --scale=0.02 --out=graph.txt
//   kboost_cli seeds    --graph=graph.txt --count=20 [--random]
//   kboost_cli boost    --graph=graph.txt --seeds=0,5,9 --k=50 [--lb]
//                       [--k-sweep=1,10,50] [--save-pool=pool.bin]
//                       [--codec=nop|varint] [--load-pool=pool.bin]
//                       [--mmap-pool]
//   kboost_cli evaluate --graph=graph.txt --seeds=0,5,9 --boost=1,2,3
//   kboost_cli serve-bench --graph=graph.txt --load-pool=pool.bin
//                          [--mmap-pool] [--clients=1,2,4] [--queries=32]
//   kboost_cli serve    --graph=graph.txt --pool=digg=pool.bin [--listen=7447]
//   kboost_cli query    --connect=127.0.0.1:7447 --pool=digg --k=10
//
// Graphs are the text edge-list format of src/graph/graph_io.h. Pool
// snapshots (--save-pool/--load-pool) are the binary format of
// src/io/pool_io.h: sample once, then serve any budget ≤ the pool's from
// the same file — across processes and restarts. --codec picks the section
// codec written into the snapshot (varint shrinks it for cold storage);
// --mmap-pool serves a nop-coded snapshot zero-copy from an mmap of the
// file instead of copying it into fresh arenas.

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/boost_session.h"
#include "src/net/daemon.h"
#include "src/serve/boost_service.h"
#include "src/util/parse.h"
#include "src/util/timer.h"
#include "src/expt/datasets.h"
#include "src/expt/seed_selection.h"
#include "src/graph/graph_io.h"
#include "src/io/pool_io.h"
#include "src/sim/boost_model.h"

namespace {

using namespace kboost;

const char* FlagValue(int argc, char** argv, const char* name) {
  const size_t len = std::strlen(name);
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

/// Rejects unknown arguments: every flag must be a known `--name=value` or a
/// known `--switch`, otherwise the command fails loudly instead of silently
/// ignoring a typo (e.g. --kk=50).
bool ValidateFlags(int argc, char** argv,
                   std::initializer_list<const char*> value_flags,
                   std::initializer_list<const char*> switches = {}) {
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    bool known = false;
    for (const char* name : value_flags) {
      const size_t len = std::strlen(name);
      if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
        known = true;
        break;
      }
    }
    for (const char* name : switches) {
      if (known) break;
      if (std::strcmp(arg, name) == 0) known = true;
    }
    if (!known) {
      std::fprintf(stderr,
                   "error: unknown flag '%s' for 'kboost_cli %s' "
                   "(see kboost_cli --help)\n",
                   arg, argv[1]);
      return false;
    }
  }
  return true;
}

/// Parses a comma-separated list of non-negative integers into `out`.
/// Returns false (leaving a clear error on stderr to the caller) on any
/// malformed input: non-numeric characters, signs, empty elements, trailing
/// commas, or a value that does not fit T. Each element goes through the
/// same strict kboost::ParseUint64 as the scalar flags — "--seeds=-1" is an
/// error, never a wrapped-around node id.
template <typename T>
bool ParseUintList(const char* text, const char* flag_name,
                   std::vector<T>* out) {
  out->clear();
  if (text == nullptr) return true;
  const char* p = text;
  while (true) {
    const char* comma = std::strchr(p, ',');
    const std::string element =
        comma == nullptr ? std::string(p) : std::string(p, comma);
    uint64_t value = 0;
    if (Status s = ParseUint64(element.c_str(), flag_name, &value); !s.ok()) {
      std::fprintf(stderr, "error: %s (in list '%s')\n", s.ToString().c_str(),
                   text);
      return false;
    }
    if (value > std::numeric_limits<T>::max()) {
      std::fprintf(stderr, "error: %s element '%s' is out of range\n",
                   flag_name, element.c_str());
      return false;
    }
    out->push_back(static_cast<T>(value));
    if (comma == nullptr) return true;
    p = comma + 1;
  }
}

/// The one validated integer-flag parser: strict whole-string base-10 parse
/// through kboost::ParseUint64 (no bare strtoull anywhere — "abc" or "12x"
/// must be an error, not a silent 0/12). Returns false with the error on
/// stderr. When the flag is absent, `*out` keeps its preloaded default.
bool ParseUint64Flag(int argc, char** argv, const char* flag_name,
                     uint64_t* out) {
  const char* text = FlagValue(argc, argv, flag_name);
  if (text == nullptr) return true;
  if (Status s = ParseUint64(text, flag_name, out); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return false;
  }
  return true;
}

/// Parses one signed integer flag (--threads, --shards) if present: syntax
/// errors are rejected here, the valid range is owned by
/// BoostOptions::Validate() (the one place the CLI, set_num_threads and
/// BoostSession::Create agree on ranges). Returns false on a syntax error;
/// `*out` stays 0 when the flag is absent.
bool ParseIntFlag(int argc, char** argv, const char* flag_name, int* out) {
  *out = 0;
  const char* text = FlagValue(argc, argv, flag_name);
  if (text == nullptr) return true;
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "error: %s must be an integer, got '%s'\n",
                 flag_name, text);
    return false;
  }
  // A strtol overflow (or a value outside int) saturates so that
  // BoostOptions::Validate rejects it with its range message.
  if (errno == ERANGE || value > std::numeric_limits<int>::max()) {
    *out = std::numeric_limits<int>::max();
  } else if (value < std::numeric_limits<int>::min()) {
    *out = std::numeric_limits<int>::min();
  } else {
    *out = static_cast<int>(value);
  }
  return true;
}

bool ParseThreadsFlag(int argc, char** argv, int* threads) {
  return ParseIntFlag(argc, argv, "--threads", threads);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: kboost_cli <command> [flags]\n"
      "  generate --dataset=NAME --scale=F --out=PATH [--beta=F]\n"
      "      synthesize a stand-in dataset (digg|flixster|twitter|flickr)\n"
      "  seeds --graph=PATH --count=N [--random] [--seed=N]\n"
      "      print an influential (IMM) or uniform-random seed set\n"
      "  boost --graph=PATH --seeds=a,b,c --k=N [--lb] [--epsilon=F]\n"
      "        [--seed=N] [--k-sweep=a,b,c] [--save-pool=PATH]\n"
      "        [--codec=nop|varint] [--load-pool=PATH] [--mmap-pool]\n"
      "        [--threads=N] [--shards=S]\n"
      "      run PRR-Boost (or PRR-Boost-LB with --lb); prints the boost\n"
      "      set and its Monte-Carlo-verified boost. --k-sweep answers\n"
      "      every listed budget from ONE sampled pool (a BoostSession);\n"
      "      --save-pool snapshots that pool (--codec=varint delta-codes\n"
      "      the arena sections for cold storage), --load-pool serves from\n"
      "      a snapshot without resampling (seeds/mode come from the file)\n"
      "      and --mmap-pool maps it zero-copy instead of copying it in\n"
      "      (requires a nop-coded snapshot); --threads runs sampling and\n"
      "      selection on N workers; --shards splits the pool into S arenas\n"
      "      for parallel sampling/refresh/snapshot I/O (answers are\n"
      "      bit-identical for every S)\n"
      "  evaluate --graph=PATH --seeds=a,b,c --boost=x,y,z [--sims=N]\n"
      "      Monte-Carlo estimate of the spread and boost of a given set\n"
      "  serve --graph=PATH --pool=NAME=SNAPSHOT [--pool=...] \n"
      "        [--listen=PORT] [--bind=ADDR] [--mmap-pool] [--workers=N]\n"
      "        [--queue-cap=N] [--deadline-ms=N] [--degrade=F]\n"
      "        [--dispatch-queue=N] [--max-connections=N]\n"
      "        [--drain-deadline-ms=N] [--no-remote-shutdown]\n"
      "      run the kboostd network server in-process: serve the listed\n"
      "      pool snapshots over TCP (docs/PROTOCOL.md) until SIGINT or\n"
      "      SIGTERM triggers the graceful drain; --listen=0 binds an\n"
      "      ephemeral port and prints it\n"
      "  query --connect=HOST:PORT --k=N [--pool=NAME]\n"
      "        [--mode=auto|full|lb] [--threads=N] [--deadline-ms=N]\n"
      "        [--timeout-ms=N]\n"
      "      round-trip one query against a running kboostd and print the\n"
      "      typed outcome (exit 0 only when the remote solve succeeded)\n"
      "  serve-bench --graph=PATH (--load-pool=PATH [--mmap-pool] |\n"
      "        --seeds=a,b,c --k=N [--lb] [--epsilon=F] [--seed=N]\n"
      "        [--shards=S]) [--clients=1,2,4] [--queries=32] [--threads=N]\n"
      "        [--deadline-ms=N] [--queue-cap=N] [--degrade=F]\n"
      "      register the pool in a BoostService and measure concurrent\n"
      "      query throughput: each client count issues the same mixed\n"
      "      (k, mode) query stream from that many threads and every\n"
      "      answer is checked bit-identical against the serial run;\n"
      "      --deadline-ms sets the service default deadline, --queue-cap\n"
      "      caps in-flight solves at N (plus N queued, excess shed typed)\n"
      "      and --degrade=F downgrades kAuto answers to the LB order past\n"
      "      that load fraction — overload outcomes are reported per run\n");
  return 2;
}

int CmdGenerate(int argc, char** argv) {
  if (!ValidateFlags(argc, argv, {"--dataset", "--out", "--scale", "--beta"})) {
    return 2;
  }
  const char* name = FlagValue(argc, argv, "--dataset");
  const char* out = FlagValue(argc, argv, "--out");
  const char* scale_s = FlagValue(argc, argv, "--scale");
  const char* beta_s = FlagValue(argc, argv, "--beta");
  if (name == nullptr || out == nullptr) return Usage();
  DatasetSpec spec = SpecByName(name, scale_s ? std::atof(scale_s) : 0.02,
                                beta_s ? std::atof(beta_s) : 2.0);
  Dataset d = MakeDataset(spec);
  Status s = SaveEdgeList(d.graph, out);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: n=%zu m=%zu avg_p=%.4f\n", out,
              d.graph.num_nodes(), d.graph.num_edges(),
              d.graph.AverageProbability());
  return 0;
}

int CmdSeeds(int argc, char** argv) {
  if (!ValidateFlags(argc, argv, {"--graph", "--count", "--seed"},
                     {"--random"})) {
    return 2;
  }
  const char* path = FlagValue(argc, argv, "--graph");
  const char* count_s = FlagValue(argc, argv, "--count");
  if (path == nullptr || count_s == nullptr) return Usage();
  StatusOr<DirectedGraph> g = LoadEdgeList(path);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.status().ToString().c_str());
    return 1;
  }
  uint64_t count = 0;
  uint64_t seed = 42;
  if (!ParseUint64Flag(argc, argv, "--count", &count) ||
      !ParseUint64Flag(argc, argv, "--seed", &seed)) {
    return 2;
  }
  std::vector<NodeId> seeds =
      HasFlag(argc, argv, "--random")
          ? SelectRandomSeeds(g.value(), count, seed)
          : SelectInfluentialSeeds(g.value(), count, seed, 0);
  for (size_t i = 0; i < seeds.size(); ++i) {
    std::printf("%s%u", i ? "," : "", seeds[i]);
  }
  std::printf("\n");
  return 0;
}

int CmdBoost(int argc, char** argv) {
  if (!ValidateFlags(argc, argv,
                     {"--graph", "--seeds", "--k", "--k-sweep", "--epsilon",
                      "--seed", "--save-pool", "--load-pool", "--codec",
                      "--threads", "--shards"},
                     {"--lb", "--mmap-pool"})) {
    return 2;
  }
  const char* path = FlagValue(argc, argv, "--graph");
  const char* k_s = FlagValue(argc, argv, "--k");
  uint64_t k_flag = 0;
  if (!ParseUint64Flag(argc, argv, "--k", &k_flag)) return 2;
  const bool has_threads = FlagValue(argc, argv, "--threads") != nullptr;
  int threads = 0;
  if (!ParseThreadsFlag(argc, argv, &threads)) return 2;
  const bool has_shards = FlagValue(argc, argv, "--shards") != nullptr;
  int shards = 0;
  if (!ParseIntFlag(argc, argv, "--shards", &shards)) return 2;
  const char* load_pool = FlagValue(argc, argv, "--load-pool");
  const char* save_pool = FlagValue(argc, argv, "--save-pool");
  const char* codec_s = FlagValue(argc, argv, "--codec");
  const bool mmap_pool = HasFlag(argc, argv, "--mmap-pool");
  if (codec_s != nullptr && save_pool == nullptr) {
    std::fprintf(stderr, "error: --codec only applies to --save-pool\n");
    return 2;
  }
  PoolSaveOptions save_options;
  if (codec_s != nullptr) {
    const Codec* codec = CodecByName(codec_s);
    if (codec == nullptr) {
      std::fprintf(stderr, "error: unknown --codec '%s' (nop|varint)\n",
                   codec_s);
      return 2;
    }
    save_options.codec = codec->id();
  }
  if (mmap_pool && load_pool == nullptr) {
    std::fprintf(stderr, "error: --mmap-pool only applies to --load-pool\n");
    return 2;
  }
  std::vector<size_t> sweep;
  std::vector<NodeId> seeds;
  if (!ParseUintList(FlagValue(argc, argv, "--k-sweep"), "--k-sweep",
                     &sweep) ||
      !ParseUintList(FlagValue(argc, argv, "--seeds"), "--seeds", &seeds)) {
    return 2;
  }
  if (load_pool != nullptr) {
    // Mode, sampling options, seeds and the shard layout come from the
    // snapshot; accepting these flags alongside --load-pool would silently
    // discard them.
    for (const char* name : {"--seeds", "--epsilon", "--seed", "--shards"}) {
      if (FlagValue(argc, argv, name) != nullptr) {
        std::fprintf(stderr,
                     "error: %s comes from the pool snapshot; it cannot be "
                     "combined with --load-pool\n",
                     name);
        return 2;
      }
    }
    if (HasFlag(argc, argv, "--lb")) {
      std::fprintf(stderr,
                   "error: the snapshot fixes the lb/full mode; --lb cannot "
                   "be combined with --load-pool\n");
      return 2;
    }
  }
  if (path == nullptr) return Usage();
  if (load_pool == nullptr && k_s == nullptr && sweep.empty()) return Usage();
  if (load_pool == nullptr && seeds.empty()) return Usage();
  StatusOr<DirectedGraph> g = LoadEdgeList(path);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.status().ToString().c_str());
    return 1;
  }

  std::unique_ptr<BoostSession> session;
  if (load_pool != nullptr) {
    PoolLoadOptions load_options;
    load_options.use_mmap = mmap_pool;
    StatusOr<std::unique_ptr<BoostSession>> loaded =
        LoadPoolSnapshot(g.value(), load_pool, load_options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    session = std::move(loaded).value();
    if (has_threads) {
      if (Status s = session->set_num_threads(threads); !s.ok()) {
        std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
        return 2;
      }
    }
    std::printf(
        "loaded pool %s: budget=%zu theta=%zu mode=%s shards=%zu%s\n",
        load_pool, session->budget(),
        session->engine().collection().num_samples(),
        session->lb_only() ? "lb" : "full",
        session->engine().collection().num_shards(),
        mmap_pool ? " (mmap)" : "");
  } else {
    BoostOptions options;
    options.k = k_flag;
    for (size_t k : sweep) options.k = std::max(options.k, k);
    if (options.k == 0) return Usage();
    const char* eps_s = FlagValue(argc, argv, "--epsilon");
    if (eps_s != nullptr) options.epsilon = std::atof(eps_s);
    if (!ParseUint64Flag(argc, argv, "--seed", &options.seed)) return 2;
    if (has_threads) options.num_threads = threads;
    if (has_shards) options.num_shards = shards;
    StatusOr<std::unique_ptr<BoostSession>> created = BoostSession::Create(
        g.value(), seeds, options, HasFlag(argc, argv, "--lb"));
    if (!created.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   created.status().ToString().c_str());
      return 2;
    }
    session = std::move(created).value();
  }

  if (sweep.empty()) {
    sweep.push_back(k_s ? k_flag : session->budget());
  }
  std::sort(sweep.begin(), sweep.end());

  const bool lb = session->lb_only();
  for (size_t k : sweep) {
    if (k < 1 || k > session->budget()) {
      std::fprintf(stderr,
                   "error: budget %zu outside the session's range [1, %zu]\n",
                   k, session->budget());
      return 1;
    }
    BoostResult r = session->SolveForBudget(k);
    std::printf("k=%zu boost_set: ", k);
    for (size_t i = 0; i < r.best_set.size(); ++i) {
      std::printf("%s%u", i ? "," : "", r.best_set[i]);
    }
    std::printf("\nestimate (%s): %.3f%s\n", lb ? "mu_hat" : "delta_hat",
                r.best_estimate,
                r.pool_reused ? "  [pool reused]" : "");
    BoostEstimate mc =
        EstimateBoost(g.value(), session->seeds(), r.best_set, {});
    std::printf("monte_carlo: boost %.3f +- %.3f (spread %.1f -> %.1f)\n",
                mc.boost, 2 * mc.boost_stderr, mc.base_spread,
                mc.boosted_spread);
    std::printf("samples: %zu (boostable %zu%s, pool budget %zu)\n",
                r.num_samples, r.num_boostable,
                r.samples_capped ? ", capped" : "", r.pool_budget);
  }

  if (save_pool != nullptr) {
    session->Prepare();
    StatusOr<PoolSaveResult> saved =
        SavePoolSnapshot(*session, save_pool, save_options);
    if (!saved.ok()) {
      std::fprintf(stderr, "error: %s\n", saved.status().ToString().c_str());
      return 1;
    }
    std::printf("saved pool to %s: %llu bytes, %llu samples, "
                "%.2f bytes/sample (%s codec)\n",
                save_pool,
                static_cast<unsigned long long>(saved->file_bytes),
                static_cast<unsigned long long>(saved->num_samples),
                saved->bytes_per_sample, CodecName(save_options.codec));
  }
  return 0;
}

int CmdEvaluate(int argc, char** argv) {
  if (!ValidateFlags(argc, argv, {"--graph", "--seeds", "--boost", "--sims"})) {
    return 2;
  }
  const char* path = FlagValue(argc, argv, "--graph");
  std::vector<NodeId> seeds, boost;
  if (!ParseUintList(FlagValue(argc, argv, "--seeds"), "--seeds", &seeds) ||
      !ParseUintList(FlagValue(argc, argv, "--boost"), "--boost", &boost)) {
    return 2;
  }
  if (path == nullptr || seeds.empty()) return Usage();
  StatusOr<DirectedGraph> g = LoadEdgeList(path);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.status().ToString().c_str());
    return 1;
  }
  SimulationOptions sim;
  uint64_t sims = sim.num_simulations;
  if (!ParseUint64Flag(argc, argv, "--sims", &sims)) return 2;
  sim.num_simulations = sims;
  BoostEstimate e = EstimateBoost(g.value(), seeds, boost, sim);
  std::printf("base_spread:    %.3f\n", e.base_spread);
  std::printf("boosted_spread: %.3f\n", e.boosted_spread);
  std::printf("boost:          %.3f +- %.3f\n", e.boost, 2 * e.boost_stderr);
  return 0;
}

/// Bit-identity predicate for the serve-bench divergence check: the sets and
/// estimates a query answer is made of, compared exactly (the concurrency
/// guarantee is bit-identical results, not approximately-equal ones).
bool SameAnswer(const BoostResult& a, const BoostResult& b) {
  return a.best_set == b.best_set && a.best_estimate == b.best_estimate &&
         a.lb_set == b.lb_set && a.lb_mu_hat == b.lb_mu_hat &&
         a.delta_set == b.delta_set && a.delta_delta_hat == b.delta_delta_hat;
}

int CmdServeBench(int argc, char** argv) {
  if (!ValidateFlags(argc, argv,
                     {"--graph", "--load-pool", "--seeds", "--k", "--epsilon",
                      "--seed", "--clients", "--queries", "--threads",
                      "--shards", "--deadline-ms", "--queue-cap",
                      "--degrade"},
                     {"--lb", "--mmap-pool"})) {
    return 2;
  }
  const char* path = FlagValue(argc, argv, "--graph");
  const char* load_pool = FlagValue(argc, argv, "--load-pool");
  const char* k_s = FlagValue(argc, argv, "--k");
  const bool mmap_pool = HasFlag(argc, argv, "--mmap-pool");
  if (path == nullptr) return Usage();
  if (load_pool == nullptr && k_s == nullptr) return Usage();
  if (mmap_pool && load_pool == nullptr) {
    std::fprintf(stderr, "error: --mmap-pool only applies to --load-pool\n");
    return 2;
  }
  const bool has_threads = FlagValue(argc, argv, "--threads") != nullptr;
  int threads = 0;
  if (!ParseThreadsFlag(argc, argv, &threads)) return 2;
  const bool has_shards = FlagValue(argc, argv, "--shards") != nullptr;
  int shards = 0;
  if (!ParseIntFlag(argc, argv, "--shards", &shards)) return 2;
  if (load_pool != nullptr && has_shards) {
    std::fprintf(stderr,
                 "error: --shards comes from the pool snapshot; it cannot be "
                 "combined with --load-pool\n");
    return 2;
  }
  std::vector<size_t> clients;
  if (!ParseUintList(FlagValue(argc, argv, "--clients"), "--clients",
                     &clients)) {
    return 2;
  }
  if (clients.empty()) clients = {1, 2, 4};
  for (size_t c : clients) {
    if (c < 1 || c > 64) {
      std::fprintf(stderr, "error: --clients entries must be in [1, 64]\n");
      return 2;
    }
  }
  uint64_t num_queries = 32;
  if (!ParseUint64Flag(argc, argv, "--queries", &num_queries)) return 2;
  if (num_queries < 1 || num_queries > 1'000'000) {
    std::fprintf(stderr,
                 "error: --queries must be an integer in [1, 1000000], "
                 "got %llu\n",
                 static_cast<unsigned long long>(num_queries));
    return 2;
  }
  // Overload knobs, all off by default: --deadline-ms is the service
  // default deadline, --queue-cap bounds in-flight solves (with an
  // equal-sized waiting room), --degrade is the load factor past which
  // kAuto answers downgrade to the LB cached order. Range validation for
  // --degrade is owned by BoostService::Create (the one place the service
  // agrees on it).
  uint64_t deadline_ms = 0;
  if (!ParseUint64Flag(argc, argv, "--deadline-ms", &deadline_ms)) return 2;
  uint64_t queue_cap = 0;
  if (!ParseUint64Flag(argc, argv, "--queue-cap", &queue_cap)) return 2;
  double degrade = 0.0;
  if (const char* degrade_s = FlagValue(argc, argv, "--degrade");
      degrade_s != nullptr) {
    char* end = nullptr;
    degrade = std::strtod(degrade_s, &end);
    if (end == degrade_s || *end != '\0') {
      std::fprintf(stderr, "error: --degrade must be a number, got '%s'\n",
                   degrade_s);
      return 2;
    }
  }

  StatusOr<DirectedGraph> g = LoadEdgeList(path);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.status().ToString().c_str());
    return 1;
  }

  std::unique_ptr<BoostSession> session;
  if (load_pool != nullptr) {
    PoolLoadOptions load_options;
    load_options.use_mmap = mmap_pool;
    StatusOr<std::unique_ptr<BoostSession>> loaded =
        LoadPoolSnapshot(g.value(), load_pool, load_options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    session = std::move(loaded).value();
    if (has_threads) {
      if (Status s = session->set_num_threads(threads); !s.ok()) {
        std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
        return 2;
      }
    }
  } else {
    std::vector<NodeId> seeds;
    if (!ParseUintList(FlagValue(argc, argv, "--seeds"), "--seeds", &seeds)) {
      return 2;
    }
    if (seeds.empty()) return Usage();
    BoostOptions options;
    uint64_t k_flag = 0;
    if (!ParseUint64Flag(argc, argv, "--k", &k_flag)) return 2;
    options.k = k_flag;
    const char* eps_s = FlagValue(argc, argv, "--epsilon");
    if (eps_s != nullptr) options.epsilon = std::atof(eps_s);
    if (!ParseUint64Flag(argc, argv, "--seed", &options.seed)) return 2;
    if (has_threads) options.num_threads = threads;
    if (has_shards) options.num_shards = shards;
    StatusOr<std::unique_ptr<BoostSession>> created = BoostSession::Create(
        g.value(), std::move(seeds), options, HasFlag(argc, argv, "--lb"));
    if (!created.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   created.status().ToString().c_str());
      return 2;
    }
    session = std::move(created).value();
  }

  const bool lb = session->lb_only();
  BoostService::Options service_options;
  service_options.default_deadline_ms = deadline_ms;
  service_options.max_in_flight = queue_cap;
  service_options.max_queued = queue_cap;
  service_options.degrade_load_factor = degrade;
  StatusOr<std::unique_ptr<BoostService>> service_or =
      BoostService::Create(g.value(), service_options);
  if (!service_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 service_or.status().ToString().c_str());
    return 1;
  }
  BoostService& service = *service_or.value();
  std::printf("preparing pool (budget %zu, %s mode)...\n", session->budget(),
              lb ? "lb" : "full");
  WallTimer prepare_timer;
  const size_t budget = session->budget();
  if (Status s = service.AddPool("pool", std::move(session)); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("prepared in %.3fs, theta=%zu shards=%zu\n",
              prepare_timer.Seconds(),
              service.GetPool("pool")->engine().collection().num_samples(),
              service.GetPool("pool")->engine().collection().num_shards());

  // The mixed query stream: budgets sweep the pool range, modes alternate
  // native/LB on full pools. Each request runs its selection single-worker
  // so the client count is the only concurrency variable.
  std::vector<BoostRequest> requests(num_queries);
  const size_t k_steps[] = {1, budget / 4, budget / 2, (3 * budget) / 4,
                            budget};
  for (size_t i = 0; i < num_queries; ++i) {
    requests[i].pool = "pool";
    requests[i].k = std::max<size_t>(1, k_steps[i % 5]);
    requests[i].mode =
        (!lb && i % 2 == 1) ? SolveMode::kLbOnly : SolveMode::kAuto;
    requests[i].num_threads = 1;
  }

  // Serial reference pass: every concurrent answer must match these bits.
  // The reference queries pin explicit modes (always honored, pressure or
  // not) and a deliberately unreachable deadline, so the reference stays the
  // un-degraded truth even when overload knobs are set; degraded concurrent
  // answers are checked against the LB reference instead.
  std::vector<BoostResult> reference(num_queries);
  std::vector<BoostResult> lb_reference(num_queries);
  WallTimer serial_timer;
  {
    SolveContext context;
    for (size_t i = 0; i < num_queries; ++i) {
      BoostRequest ref = requests[i];
      ref.deadline_ms = 600'000;  // 10 min: present but unreachable
      if (!lb && ref.mode == SolveMode::kAuto) ref.mode = SolveMode::kFull;
      StatusOr<BoostResponse> r = service.Solve(ref, &context);
      if (!r.ok()) {
        std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
        return 1;
      }
      reference[i] = std::move(r).value().result;
      if (!lb) {
        ref.mode = SolveMode::kLbOnly;
        StatusOr<BoostResponse> lb_r = service.Solve(ref, &context);
        if (!lb_r.ok()) {
          std::fprintf(stderr, "error: %s\n",
                       lb_r.status().ToString().c_str());
          return 1;
        }
        lb_reference[i] = std::move(lb_r).value().result;
      }
    }
  }
  const double serial_s = serial_timer.Seconds();
  std::printf("serial reference: %zu queries in %.3fs (%.1f q/s)\n\n",
              num_queries, serial_s,
              static_cast<double>(num_queries) / serial_s);

  // Measure every client count first, then print with the speedup column
  // anchored on the 1-client run when the list has one (on the first listed
  // count otherwise, labelled accordingly).
  struct Row {
    size_t clients;
    double qps;
    double secs;
  };
  std::vector<Row> rows;
  bool diverged = false;
  size_t total_shed = 0, total_missed = 0, total_degraded = 0;
  for (size_t c : clients) {
    std::atomic<size_t> mismatches{0};
    std::atomic<size_t> shed{0}, missed{0}, degraded{0};
    WallTimer timer;
    std::vector<std::thread> workers;
    workers.reserve(c);
    for (size_t t = 0; t < c; ++t) {
      workers.emplace_back([&, t] {
        SolveContext context;
        for (size_t i = t; i < num_queries; i += c) {
          StatusOr<BoostResponse> r = service.Solve(requests[i], &context);
          if (r.ok()) {
            // A degraded answer must be the pool's exact LB answer; an
            // un-degraded one must match the full reference bits.
            const BoostResult& expect =
                r.value().degraded ? lb_reference[i] : reference[i];
            if (r.value().degraded) {
              degraded.fetch_add(1, std::memory_order_relaxed);
            }
            if (!SameAnswer(r.value().result, expect)) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (r.status().code() == StatusCode::kResourceExhausted) {
            shed.fetch_add(1, std::memory_order_relaxed);
          } else if (r.status().code() == StatusCode::kDeadlineExceeded) {
            missed.fetch_add(1, std::memory_order_relaxed);
          } else {
            // Anything else under overload is a bug, not load shedding.
            std::fprintf(stderr, "error: untyped failure: %s\n",
                         r.status().ToString().c_str());
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    const double secs = timer.Seconds();
    rows.push_back({c, static_cast<double>(num_queries) / secs, secs});
    total_shed += shed.load();
    total_missed += missed.load();
    total_degraded += degraded.load();
    if (mismatches.load() != 0) {
      std::fprintf(stderr,
                   "error: %zu of %zu concurrent answers diverged from the "
                   "serial reference at %zu clients\n",
                   mismatches.load(), num_queries, c);
      diverged = true;
    }
  }
  double qps_base = rows.front().qps;
  bool base_is_one = clients.front() == 1;
  for (const Row& row : rows) {
    if (row.clients == 1) {
      qps_base = row.qps;
      base_is_one = true;
      break;
    }
  }
  std::printf("%8s %12s %10s %10s\n", "clients", "queries/s", "wall_s",
              base_is_one ? "vs_1" : "vs_first");
  for (const Row& row : rows) {
    std::printf("%8zu %12.1f %10.3f %9.2fx\n", row.clients, row.qps,
                row.secs, row.qps / qps_base);
  }

  // The service's own metrics, as an operator dashboard would read them:
  // per-pool traffic counters and solve-latency quantiles collected on the
  // query path (src/serve/service_stats.h).
  if (total_shed + total_missed + total_degraded != 0) {
    std::printf("\noverload outcomes across all client counts: %zu shed "
                "(ResourceExhausted), %zu deadline misses, %zu degraded "
                "answers\n",
                total_shed, total_missed, total_degraded);
  }

  const ServiceStatsSnapshot stats = service.Stats();
  std::printf("\nservice stats (Stats()):\n");
  for (const PoolStatsSnapshot& ps : stats.pools) {
    std::printf("  pool '%s' v%llu: %llu queries, %llu errors, "
                "latency ms mean/p50/p95/ewma = %.3f/%.3f/%.3f/%.3f, "
                "last rebuild %.1f ms\n",
                ps.pool.c_str(), static_cast<unsigned long long>(ps.version),
                static_cast<unsigned long long>(ps.queries),
                static_cast<unsigned long long>(ps.errors), ps.latency_mean_ms,
                ps.latency_p50_ms, ps.latency_p95_ms, ps.latency_ewma_ms,
                ps.last_rebuild_ms);
    if (ps.shed + ps.deadline_misses + ps.degraded + ps.load_retries != 0) {
      std::printf("    overload: %llu shed, %llu deadline misses, %llu "
                  "degraded, %llu load retries\n",
                  static_cast<unsigned long long>(ps.shed),
                  static_cast<unsigned long long>(ps.deadline_misses),
                  static_cast<unsigned long long>(ps.degraded),
                  static_cast<unsigned long long>(ps.load_retries));
    }
  }
  std::printf("  admission: %llu admitted, %llu shed, %llu queue timeouts "
              "(in flight %llu, queued %llu)\n",
              static_cast<unsigned long long>(stats.admitted),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.queue_timeouts),
              static_cast<unsigned long long>(stats.in_flight),
              static_cast<unsigned long long>(stats.queued));
  if (stats.not_found != 0) {
    std::printf("  not-found requests: %llu\n",
                static_cast<unsigned long long>(stats.not_found));
  }
  return diverged ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "generate") return CmdGenerate(argc, argv);
  if (cmd == "seeds") return CmdSeeds(argc, argv);
  if (cmd == "boost") return CmdBoost(argc, argv);
  if (cmd == "evaluate") return CmdEvaluate(argc, argv);
  if (cmd == "serve-bench") return CmdServeBench(argc, argv);
  if (cmd == "serve") return RunServeCommand(argc, argv, 2);
  if (cmd == "query") return RunQueryCommand(argc, argv, 2);
  return Usage();
}
