// kboost_cli — command-line front end for the library, for users who want
// to run the paper's algorithms on their own edge-list graphs without
// writing C++.
//
//   kboost_cli generate --dataset=digg --scale=0.02 --out=graph.txt
//   kboost_cli seeds    --graph=graph.txt --count=20 [--random]
//   kboost_cli boost    --graph=graph.txt --seeds=0,5,9 --k=50 [--lb]
//   kboost_cli evaluate --graph=graph.txt --seeds=0,5,9 --boost=1,2,3
//
// Graphs are the text edge-list format of src/graph/graph_io.h.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/prr_boost.h"
#include "src/expt/datasets.h"
#include "src/expt/seed_selection.h"
#include "src/graph/graph_io.h"
#include "src/sim/boost_model.h"

namespace {

using namespace kboost;

const char* FlagValue(int argc, char** argv, const char* name) {
  const size_t len = std::strlen(name);
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

std::vector<NodeId> ParseNodeList(const char* text) {
  std::vector<NodeId> nodes;
  if (text == nullptr) return nodes;
  const char* p = text;
  while (*p) {
    nodes.push_back(static_cast<NodeId>(std::strtoull(p,
                                                      const_cast<char**>(&p),
                                                      10)));
    if (*p == ',') ++p;
  }
  return nodes;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: kboost_cli <command> [flags]\n"
      "  generate --dataset=NAME --scale=F --out=PATH [--beta=F]\n"
      "      synthesize a stand-in dataset (digg|flixster|twitter|flickr)\n"
      "  seeds --graph=PATH --count=N [--random] [--seed=N]\n"
      "      print an influential (IMM) or uniform-random seed set\n"
      "  boost --graph=PATH --seeds=a,b,c --k=N [--lb] [--epsilon=F]\n"
      "      run PRR-Boost (or PRR-Boost-LB with --lb); prints the boost\n"
      "      set and its Monte-Carlo-verified boost\n"
      "  evaluate --graph=PATH --seeds=a,b,c --boost=x,y,z [--sims=N]\n"
      "      Monte-Carlo estimate of the spread and boost of a given set\n");
  return 2;
}

int CmdGenerate(int argc, char** argv) {
  const char* name = FlagValue(argc, argv, "--dataset");
  const char* out = FlagValue(argc, argv, "--out");
  const char* scale_s = FlagValue(argc, argv, "--scale");
  const char* beta_s = FlagValue(argc, argv, "--beta");
  if (name == nullptr || out == nullptr) return Usage();
  DatasetSpec spec = SpecByName(name, scale_s ? std::atof(scale_s) : 0.02,
                                beta_s ? std::atof(beta_s) : 2.0);
  Dataset d = MakeDataset(spec);
  Status s = SaveEdgeList(d.graph, out);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: n=%zu m=%zu avg_p=%.4f\n", out,
              d.graph.num_nodes(), d.graph.num_edges(),
              d.graph.AverageProbability());
  return 0;
}

int CmdSeeds(int argc, char** argv) {
  const char* path = FlagValue(argc, argv, "--graph");
  const char* count_s = FlagValue(argc, argv, "--count");
  if (path == nullptr || count_s == nullptr) return Usage();
  StatusOr<DirectedGraph> g = LoadEdgeList(path);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.status().ToString().c_str());
    return 1;
  }
  const size_t count = std::strtoull(count_s, nullptr, 10);
  const char* seed_s = FlagValue(argc, argv, "--seed");
  const uint64_t seed = seed_s ? std::strtoull(seed_s, nullptr, 10) : 42;
  std::vector<NodeId> seeds =
      HasFlag(argc, argv, "--random")
          ? SelectRandomSeeds(g.value(), count, seed)
          : SelectInfluentialSeeds(g.value(), count, seed, 0);
  for (size_t i = 0; i < seeds.size(); ++i) {
    std::printf("%s%u", i ? "," : "", seeds[i]);
  }
  std::printf("\n");
  return 0;
}

int CmdBoost(int argc, char** argv) {
  const char* path = FlagValue(argc, argv, "--graph");
  const char* k_s = FlagValue(argc, argv, "--k");
  std::vector<NodeId> seeds = ParseNodeList(FlagValue(argc, argv, "--seeds"));
  if (path == nullptr || k_s == nullptr || seeds.empty()) return Usage();
  StatusOr<DirectedGraph> g = LoadEdgeList(path);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.status().ToString().c_str());
    return 1;
  }
  BoostOptions options;
  options.k = std::strtoull(k_s, nullptr, 10);
  const char* eps_s = FlagValue(argc, argv, "--epsilon");
  if (eps_s != nullptr) options.epsilon = std::atof(eps_s);
  const bool lb = HasFlag(argc, argv, "--lb");

  BoostResult r = lb ? PrrBoostLb(g.value(), seeds, options)
                     : PrrBoost(g.value(), seeds, options);
  std::printf("boost_set: ");
  for (size_t i = 0; i < r.best_set.size(); ++i) {
    std::printf("%s%u", i ? "," : "", r.best_set[i]);
  }
  std::printf("\nestimate (%s): %.3f\n", lb ? "mu_hat" : "delta_hat",
              r.best_estimate);
  BoostEstimate mc = EstimateBoost(g.value(), seeds, r.best_set, {});
  std::printf("monte_carlo: boost %.3f +- %.3f (spread %.1f -> %.1f)\n",
              mc.boost, 2 * mc.boost_stderr, mc.base_spread,
              mc.boosted_spread);
  std::printf("samples: %zu (boostable %zu%s)\n", r.num_samples,
              r.num_boostable, r.samples_capped ? ", capped" : "");
  return 0;
}

int CmdEvaluate(int argc, char** argv) {
  const char* path = FlagValue(argc, argv, "--graph");
  std::vector<NodeId> seeds = ParseNodeList(FlagValue(argc, argv, "--seeds"));
  std::vector<NodeId> boost = ParseNodeList(FlagValue(argc, argv, "--boost"));
  if (path == nullptr || seeds.empty()) return Usage();
  StatusOr<DirectedGraph> g = LoadEdgeList(path);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.status().ToString().c_str());
    return 1;
  }
  SimulationOptions sim;
  const char* sims_s = FlagValue(argc, argv, "--sims");
  if (sims_s != nullptr) {
    sim.num_simulations = std::strtoull(sims_s, nullptr, 10);
  }
  BoostEstimate e = EstimateBoost(g.value(), seeds, boost, sim);
  std::printf("base_spread:    %.3f\n", e.base_spread);
  std::printf("boosted_spread: %.3f\n", e.boosted_spread);
  std::printf("boost:          %.3f +- %.3f\n", e.boost, 2 * e.boost_stderr);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "generate") return CmdGenerate(argc, argv);
  if (cmd == "seeds") return CmdSeeds(argc, argv);
  if (cmd == "boost") return CmdBoost(argc, argv);
  if (cmd == "evaluate") return CmdEvaluate(argc, argv);
  return Usage();
}
