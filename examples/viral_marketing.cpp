// Viral-marketing scenario: a company has already signed a handful of
// influencers (the seeds). It now has budget for `k` coupons ("boosts").
// This example compares where the k coupons should go: PRR-Boost's picks
// vs the intuitive heuristics the paper evaluates, then explores splitting
// a fixed budget between hiring more influencers and sending more coupons.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/baselines/high_degree.h"
#include "src/baselines/more_seeds.h"
#include "src/baselines/pagerank.h"
#include "src/core/prr_boost.h"
#include "src/expt/budget.h"
#include "src/expt/datasets.h"
#include "src/expt/seed_selection.h"
#include "src/sim/boost_model.h"

int main(int argc, char** argv) {
  using namespace kboost;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.02;

  Dataset d = MakeDataset(SpecByName("flixster", scale));
  std::printf("campaign network: %s (n=%zu, m=%zu)\n", d.name.c_str(),
              d.graph.num_nodes(), d.graph.num_edges());

  // The brand has 15 influencers under contract.
  std::vector<NodeId> seeds =
      SelectInfluentialSeeds(d.graph, 15, /*seed=*/2024, /*threads=*/0);
  SimulationOptions sim;
  sim.num_simulations = 5000;
  std::printf("organic reach with 15 influencers: %.1f users\n\n",
              EstimateSpread(d.graph, seeds, sim).mean);

  // ---- Who should get the 60 coupons? -------------------------------------
  const size_t k = 60;
  BoostOptions bopts;
  bopts.k = k;
  auto evaluate = [&](const std::string& name,
                      const std::vector<NodeId>& boost) {
    BoostEstimate e = EstimateBoost(d.graph, seeds, boost, sim);
    std::printf("  %-22s +%.1f users (reach %.1f)\n", name.c_str(), e.boost,
                e.boosted_spread);
    return e.boost;
  };

  std::printf("boost from %zu coupons, by targeting strategy:\n", k);
  BoostResult prr = PrrBoost(d.graph, seeds, bopts);
  evaluate("PRR-Boost", prr.best_set);
  BoostResult lb = PrrBoostLb(d.graph, seeds, bopts);
  evaluate("PRR-Boost-LB", lb.best_set);
  double best_hd = 0;
  std::vector<NodeId> best_hd_set;
  for (const auto& set : HighDegreeGlobalAll(d.graph, seeds, k)) {
    double v = EstimateBoost(d.graph, seeds, set, sim).boost;
    if (v > best_hd) {
      best_hd = v;
      best_hd_set = set;
    }
  }
  evaluate("HighDegree (best of 4)", best_hd_set);
  evaluate("PageRank", PageRankBoost(d.graph, seeds, k));
  ImmOptions mopts;
  mopts.k = k;
  evaluate("MoreSeeds", SelectMoreSeeds(d.graph, seeds, mopts));

  // ---- Budget split: influencers vs coupons -------------------------------
  // Suppose one influencer costs as much as 20 coupons and the total budget
  // equals 20 influencers.
  std::printf("\nbudget split (1 influencer = 20 coupons, budget = 20 "
              "influencers):\n");
  BudgetAllocationOptions opts;
  opts.max_seeds = 20;
  opts.cost_ratios = {20};
  opts.seed_fractions = {0.25, 0.5, 0.75, 1.0};
  opts.sim_options = sim;
  for (const BudgetAllocationPoint& p : RunBudgetAllocation(d.graph, opts)) {
    std::printf("  %3.0f%% on influencers: %2zu influencers + %3zu coupons"
                " -> reach %.1f\n",
                p.seed_fraction * 100, p.num_seeds, p.num_boosted,
                p.boosted_spread);
  }
  std::printf("\nThe mixed allocations illustrate Sec. VII-C: pure seeding "
              "is rarely optimal.\n");
  return 0;
}
