// Persistence workflow: synthesize a network once, save it, reload it, and
// run PRR-Boost on the reloaded copy — the round trip a downstream user
// doing repeated experiments on a fixed graph would follow.

#include <cstdio>

#include "src/core/prr_boost.h"
#include "src/expt/datasets.h"
#include "src/expt/seed_selection.h"
#include "src/graph/graph_io.h"
#include "src/sim/boost_model.h"

int main() {
  using namespace kboost;

  Dataset d = MakeDataset(SpecByName("digg", 0.02));
  const std::string path = "/tmp/kboost_digg_standin.txt";
  Status save = SaveEdgeList(d.graph, path);
  if (!save.ok()) {
    std::fprintf(stderr, "save failed: %s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("saved %s (n=%zu, m=%zu) to %s\n", d.name.c_str(),
              d.graph.num_nodes(), d.graph.num_edges(), path.c_str());

  StatusOr<DirectedGraph> loaded = LoadEdgeList(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const DirectedGraph& g = loaded.value();
  std::printf("reloaded: n=%zu, m=%zu, avg_p=%.3f\n", g.num_nodes(),
              g.num_edges(), g.AverageProbability());

  std::vector<NodeId> seeds = SelectInfluentialSeeds(g, 10, 1, 0);
  BoostOptions opts;
  opts.k = 25;
  BoostResult r = PrrBoost(g, seeds, opts);
  BoostEstimate mc = EstimateBoost(g, seeds, r.best_set, {});
  std::printf("PRR-Boost on the reloaded graph: k=25 boost %.2f "
              "(MC %.2f +- %.2f)\n",
              r.best_estimate, mc.boost, 2 * mc.boost_stderr);
  return 0;
}
