// Persistence workflow: synthesize a network once, save it, reload it, and
// run PRR-Boost on the reloaded copy — the round trip a downstream user
// doing repeated experiments on a fixed graph would follow. The second half
// does the same for the expensive part of PRR-Boost itself: a BoostSession
// samples the PRR pool once, snapshots it to disk, and a "second process"
// reloads the pool and serves budget queries without any resampling.

#include <cstdio>

#include "src/core/boost_session.h"
#include "src/expt/datasets.h"
#include "src/expt/seed_selection.h"
#include "src/graph/graph_io.h"
#include "src/io/pool_io.h"
#include "src/sim/boost_model.h"

int main() {
  using namespace kboost;

  Dataset d = MakeDataset(SpecByName("digg", 0.02));
  const std::string path = "/tmp/kboost_digg_standin.txt";
  Status save = SaveEdgeList(d.graph, path);
  if (!save.ok()) {
    std::fprintf(stderr, "save failed: %s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("saved %s (n=%zu, m=%zu) to %s\n", d.name.c_str(),
              d.graph.num_nodes(), d.graph.num_edges(), path.c_str());

  StatusOr<DirectedGraph> loaded = LoadEdgeList(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const DirectedGraph& g = loaded.value();
  std::printf("reloaded: n=%zu, m=%zu, avg_p=%.3f\n", g.num_nodes(),
              g.num_edges(), g.AverageProbability());

  std::vector<NodeId> seeds = SelectInfluentialSeeds(g, 10, 1, 0);
  BoostOptions opts;
  opts.k = 25;
  BoostResult r = PrrBoost(g, seeds, opts);
  BoostEstimate mc = EstimateBoost(g, seeds, r.best_set, {});
  std::printf("PRR-Boost on the reloaded graph: k=25 boost %.2f "
              "(MC %.2f +- %.2f)\n",
              r.best_estimate, mc.boost, 2 * mc.boost_stderr);

  // ---- Pool snapshots: sample once, serve anywhere ------------------------
  const std::string pool_path = "/tmp/kboost_digg_pool.bin";
  BoostSession session(g, seeds, opts);
  session.Prepare();  // the expensive part: IMM schedule + PRR sampling
  Status pool_save = session.SavePool(pool_path);
  if (!pool_save.ok()) {
    std::fprintf(stderr, "pool save failed: %s\n",
                 pool_save.ToString().c_str());
    return 1;
  }
  std::printf("saved PRR pool (theta=%zu) to %s\n",
              session.engine().collection().num_samples(), pool_path.c_str());

  StatusOr<std::unique_ptr<BoostSession>> restored =
      LoadPoolSnapshot(g, pool_path);
  if (!restored.ok()) {
    std::fprintf(stderr, "pool load failed: %s\n",
                 restored.status().ToString().c_str());
    return 1;
  }
  BoostSession& warm = *restored.value();
  // The reloaded session answers any budget ≤ its pool budget without
  // resampling — here a sweep, each answer selection-only.
  for (size_t k : {5, 15, 25}) {
    BoostResult sweep = warm.SolveForBudget(k);
    std::printf("reloaded pool, k=%2zu: boost %.2f (%zu samples, %s)\n", k,
                sweep.best_estimate, sweep.num_samples,
                sweep.pool_reused ? "pool reused" : "pool sampled");
  }
  return 0;
}
