// Boosting on a cascade tree: when information propagates along a fixed
// tree topology (e.g. an organizational hierarchy or a forwarding cascade),
// the exact algorithms of Sec. VI apply. This example runs the exact
// evaluator, Greedy-Boost, and the DP-Boost FPTAS side by side and
// cross-checks them against Monte-Carlo simulation on the equivalent
// directed graph.

#include <cstdio>
#include <cstdlib>

#include "src/sim/boost_model.h"
#include "src/util/parse.h"
#include "src/tree/dp_boost.h"
#include "src/tree/tree_evaluator.h"
#include "src/tree/tree_generators.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

int main(int argc, char** argv) {
  using namespace kboost;
  // atoi would turn "0x1f" into 0 and "huge garbage" into UB-adjacent
  // nonsense; the validated parser rejects anything but a plain tree size.
  uint64_t n64 = 511;
  if (argc > 1) {
    if (Status s = ParseUint64(argv[1], "tree size", &n64); !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 2;
    }
    if (n64 < 3 || n64 > 10'000'000) {
      std::fprintf(stderr, "error: tree size must be in [3, 10000000]\n");
      return 2;
    }
  }
  const NodeId n = static_cast<NodeId>(n64);
  const size_t k = 25;

  Rng rng(7);
  TreeProbModel model;  // trivalency probabilities, p' = 1-(1-p)^2
  BidirectedTree tree = BuildCompleteBinaryTree(n, model, rng);
  tree = WithTreeSeeds(tree, 20, /*influential=*/true, rng);

  TreeBoostEvaluator evaluator(tree);
  std::printf("complete binary tree: n=%zu, 20 seeds, base spread %.3f\n\n",
              tree.num_nodes(), evaluator.base_spread());

  // Greedy-Boost: exact marginal gains, k rounds.
  WallTimer greedy_timer;
  GreedyBoostResult greedy = GreedyBoost(tree, k);
  std::printf("Greedy-Boost : boost %.4f  (%zu nodes, %.3fs)\n", greedy.boost,
              greedy.boost_set.size(), greedy_timer.Seconds());

  // DP-Boost: certified (1-eps)-approximation.
  for (double eps : {1.0, 0.5}) {
    DpBoostOptions opts;
    opts.k = k;
    opts.epsilon = eps;
    WallTimer dp_timer;
    DpBoostResult dp = DpBoost(tree, opts);
    std::printf("DP-Boost e=%.1f: boost %.4f  (certified >= %.4f, "
                "delta=%.2e, %.3fs)\n",
                eps, dp.boost, dp.dp_value, dp.delta, dp_timer.Seconds());
  }

  // Cross-check the greedy pick with plain Monte Carlo on the graph view.
  DirectedGraph g = tree.ToDirectedGraph();
  SimulationOptions sim;
  sim.num_simulations = 100000;
  BoostEstimate mc = EstimateBoost(g, tree.seeds(), greedy.boost_set, sim);
  std::printf("\nMonte-Carlo check of the greedy set: %.4f +- %.4f "
              "(exact evaluator said %.4f)\n",
              mc.boost, 2 * mc.boost_stderr, greedy.boost);
  return 0;
}
