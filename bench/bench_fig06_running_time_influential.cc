// Regenerates Figure 6: running time of PRR-Boost and PRR-Boost-LB with
// influential seeds (the paper reports 1.7x-3.7x LB speedups).

#include "bench/bench_common.h"
#include "bench/bench_flags.h"

int main(int argc, char** argv) {
  using namespace kboost;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Figure 6: running time (influential seeds)",
      "time grows with k (more samples needed); PRR-Boost-LB is ~2-4x "
      "faster than PRR-Boost on every dataset",
      flags);
  RunTiming(SeedMode::kInfluential, flags);
  return 0;
}
