// Snapshot format bench: sweeps codec ∈ {nop, varint} × load path ∈
// {cold owned-arena, zero-copy mmap} over one fixed digg pool and reports
// save wall time, file size (total + bytes/sample) and load wall time
// (best of N). A v2 stream-format save/load runs alongside as the warm-start
// baseline the v3 mmap path is judged against.
//
// This bench doubles as a Release-mode regression gate:
//   - every loaded session (cold nop, cold varint, mmap, v2) must answer
//     bit-identically to the live pool it was saved from — ABORT otherwise;
//   - mmap-ing a varint-coded snapshot must fail with FailedPrecondition —
//     ABORT if it loads;
//   - on pools of >= 100k samples the mmap warm start must be >= 2x faster
//     than the v2 stream load — ABORT otherwise (see the gate comment in
//     main() for why 2x, not the paper-shape 10x);
//   - the varint codec must shrink bytes/sample >= 2x vs nop — ABORT
//     otherwise.
//
// ε is capped at 0.35 here (θ ∝ 1/ε²) so the default run clears the
// 100k-sample floor the mmap gate is calibrated for; pass --epsilon to
// override (the mmap gate disarms below the floor).
//
// With --json=BENCH_snapshot.json the numbers land in the BENCH_*.json shape.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_flags.h"
#include "src/core/boost_session.h"
#include "src/expt/table_printer.h"
#include "src/io/codec.h"
#include "src/io/pool_io.h"
#include "src/util/timer.h"

namespace {

using namespace kboost;

constexpr int kLoadRepeats = 3;  // loads are timed best-of-N

bool SameAnswer(const BoostResult& a, const BoostResult& b) {
  return a.best_set == b.best_set && a.best_estimate == b.best_estimate &&
         a.lb_set == b.lb_set && a.lb_mu_hat == b.lb_mu_hat &&
         a.delta_set == b.delta_set && a.delta_delta_hat == b.delta_delta_hat;
}

/// Loads `path` kLoadRepeats times, returns the fastest wall ms and (via
/// `session`) the last loaded session for the bit-identity gate.
double TimedLoad(const DirectedGraph& g, const std::string& path,
                 const PoolLoadOptions& options, const char* what,
                 std::unique_ptr<BoostSession>* session) {
  double best_ms = 0.0;
  for (int rep = 0; rep < kLoadRepeats; ++rep) {
    WallTimer timer;
    StatusOr<std::unique_ptr<BoostSession>> loaded =
        LoadPoolSnapshot(g, path, options);
    const double ms = timer.Seconds() * 1e3;
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s load: %s\n", what,
                   loaded.status().ToString().c_str());
      std::exit(1);
    }
    if (rep == 0 || ms < best_ms) best_ms = ms;
    *session = std::move(loaded).value();
  }
  return best_ms;
}

void GateAnswers(BoostSession& live, BoostSession& restored,
                 const std::vector<size_t>& budgets, const char* what) {
  for (size_t k : budgets) {
    if (!SameAnswer(live.SolveForBudget(k), restored.SolveForBudget(k))) {
      std::fprintf(stderr, "FATAL: %s pool diverged from live at k=%zu\n",
                   what, k);
      std::abort();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseBenchFlags(argc, argv);
  // θ ∝ 1/ε²: cap ε so the default run clears the 100k-sample floor the
  // mmap gate is calibrated against.
  flags.epsilon = std::min(flags.epsilon, 0.35);
  PrintBanner(
      "Snapshot sweep: codec {nop,varint} x load path {cold,mmap} vs the v2 "
      "stream format",
      "mmap warm start beats the v2 stream load >= 2x on a >= 100k-sample "
      "pool; varint shrinks bytes/sample >= 2x; every restored pool answers "
      "bit-identically",
      flags);

  const size_t k = flags.ks.empty() ? 50 : flags.ks.front();
  BenchInstance instance = LoadInstance("digg", SeedMode::kInfluential, flags);
  const DirectedGraph& g = instance.dataset.graph;
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string v3_nop_path = (tmp / "kboost_snap_v3_nop.bin").string();
  const std::string v3_var_path = (tmp / "kboost_snap_v3_varint.bin").string();
  const std::string v2_path = (tmp / "kboost_snap_v2.bin").string();
  const std::vector<size_t> budgets = {1, std::max<size_t>(1, k / 2), k};

  BoostOptions options = MakeBoostOptions(k, flags);
  options.num_shards = 4;
  StatusOr<std::unique_ptr<BoostSession>> created =
      BoostSession::Create(g, instance.seeds, options);
  if (!created.ok()) {
    std::fprintf(stderr, "session: %s\n", created.status().ToString().c_str());
    return 1;
  }
  BoostSession& live = **created;
  live.Prepare();
  const uint64_t num_samples = live.engine().collection().num_samples();
  std::printf("pool: %llu samples (theta)\n",
              static_cast<unsigned long long>(num_samples));

  TablePrinter table({"format", "codec", "path", "save_ms", "snapshot_MB",
                      "B_per_sample", "load_ms"});
  BenchJsonWriter json;
  json.Add("snapshot/theta", static_cast<double>(num_samples), "samples");

  struct SaveRun {
    const char* format;
    const char* codec;
    std::string path;
    PoolSaveOptions options;
    double save_ms = 0.0;
    PoolSaveResult result;
  };
  std::vector<SaveRun> saves;
  saves.push_back({"v3", "nop", v3_nop_path, PoolSaveOptions(), 0.0, {}});
  {
    PoolSaveOptions varint_options;
    varint_options.codec = SnapshotCodec::kVarint;
    saves.push_back({"v3", "varint", v3_var_path, varint_options, 0.0, {}});
  }
  {
    PoolSaveOptions v2_options;
    v2_options.format_version = 2;
    saves.push_back({"v2", "nop", v2_path, v2_options, 0.0, {}});
  }
  for (SaveRun& run : saves) {
    WallTimer timer;
    StatusOr<PoolSaveResult> saved =
        SavePoolSnapshot(live, run.path, run.options);
    run.save_ms = timer.Seconds() * 1e3;
    if (!saved.ok()) {
      std::fprintf(stderr, "save (%s/%s): %s\n", run.format, run.codec,
                   saved.status().ToString().c_str());
      return 1;
    }
    run.result = *saved;
    const std::string prefix =
        std::string("snapshot/") + run.format + "_" + run.codec + "/";
    json.Add(prefix + "save_ms", run.save_ms, "ms");
    json.Add(prefix + "snapshot_bytes",
             static_cast<double>(run.result.file_bytes), "bytes");
    json.Add(prefix + "bytes_per_sample", run.result.bytes_per_sample,
             "bytes");
  }

  // ---- Timed loads (best of N), each gated on bit-identity ---------------
  std::unique_ptr<BoostSession> restored;
  PoolLoadOptions cold;

  const double nop_cold_ms = TimedLoad(g, v3_nop_path, cold, "v3/nop", &restored);
  GateAnswers(live, *restored, budgets, "v3/nop cold-loaded");
  const double var_cold_ms =
      TimedLoad(g, v3_var_path, cold, "v3/varint", &restored);
  GateAnswers(live, *restored, budgets, "v3/varint cold-loaded");
  const double v2_cold_ms = TimedLoad(g, v2_path, cold, "v2", &restored);
  GateAnswers(live, *restored, budgets, "v2 stream-loaded");

  PoolLoadOptions mmap_options;
  mmap_options.use_mmap = true;
  const double mmap_ms =
      TimedLoad(g, v3_nop_path, mmap_options, "v3/nop mmap", &restored);
  GateAnswers(live, *restored, budgets, "mmap-served");

  // mmap of a varint-coded snapshot must be refused, not mis-served.
  {
    StatusOr<std::unique_ptr<BoostSession>> mapped =
        LoadPoolSnapshot(g, v3_var_path, mmap_options);
    if (mapped.ok() ||
        mapped.status().code() != StatusCode::kFailedPrecondition) {
      std::fprintf(stderr,
                   "FATAL: mmap of a varint snapshot was not refused with "
                   "FailedPrecondition (got: %s)\n",
                   mapped.ok() ? "Ok" : mapped.status().ToString().c_str());
      std::abort();
    }
  }

  table.AddRow({"v3", "nop", "cold", FormatDouble(saves[0].save_ms),
                FormatDouble(static_cast<double>(saves[0].result.file_bytes) /
                             1e6),
                FormatDouble(saves[0].result.bytes_per_sample),
                FormatDouble(nop_cold_ms)});
  table.AddRow({"v3", "nop", "mmap", "-", "-", "-", FormatDouble(mmap_ms)});
  table.AddRow({"v3", "varint", "cold", FormatDouble(saves[1].save_ms),
                FormatDouble(static_cast<double>(saves[1].result.file_bytes) /
                             1e6),
                FormatDouble(saves[1].result.bytes_per_sample),
                FormatDouble(var_cold_ms)});
  table.AddRow({"v2", "nop", "cold", FormatDouble(saves[2].save_ms),
                FormatDouble(static_cast<double>(saves[2].result.file_bytes) /
                             1e6),
                FormatDouble(saves[2].result.bytes_per_sample),
                FormatDouble(v2_cold_ms)});
  json.Add("snapshot/v3_nop/cold_load_ms", nop_cold_ms, "ms");
  json.Add("snapshot/v3_nop/mmap_load_ms", mmap_ms, "ms");
  json.Add("snapshot/v3_varint/cold_load_ms", var_cold_ms, "ms");
  json.Add("snapshot/v2_nop/cold_load_ms", v2_cold_ms, "ms");

  const double mmap_speedup = v2_cold_ms / std::max(mmap_ms, 1e-9);
  const double varint_ratio = saves[0].result.bytes_per_sample /
                              std::max(saves[1].result.bytes_per_sample, 1e-9);
  json.Add("snapshot/mmap_speedup_vs_v2", mmap_speedup, "x");
  json.Add("snapshot/varint_compression_vs_nop", varint_ratio, "x");

  table.Print(std::cout);
  std::printf("\nmmap warm start: %.1fx vs the v2 stream load; varint: "
              "%.2fx smaller per sample than nop\n",
              mmap_speedup, varint_ratio);

  // ---- Hard perf gates ---------------------------------------------------
  // The mmap gate is calibrated to what the warm-start asymmetry actually
  // buys on this workload, not to the aspirational 10x: both paths keep the
  // always-on structural validation (per-graph offset/bounds checks), and on
  // social-graph pools the boostable PRR-graphs are tiny (~3 nodes each), so
  // the shared O(num_graphs) metadata pass dominates and the O(bytes)
  // decode+copy+deep-walk that mmap skips is only ~2/3 of the v2 load.
  // Measured on the reference box: mmap ~1.1ms vs v2 ~3.5ms (~3x) at ~107k
  // samples; gate at 2x to absorb single-core timing noise while still
  // catching any regression that drags O(bytes) work back onto the mmap
  // path.
  if (num_samples >= 100'000 && mmap_speedup < 2.0) {
    std::fprintf(stderr,
                 "FATAL: mmap warm start only %.1fx faster than the v2 "
                 "stream load (gate: >= 2x at >= 100k samples)\n",
                 mmap_speedup);
    std::abort();
  }
  if (varint_ratio < 2.0) {
    std::fprintf(stderr,
                 "FATAL: varint codec only shrinks bytes/sample %.2fx vs "
                 "nop (gate: >= 2x)\n",
                 varint_ratio);
    std::abort();
  }
  std::printf("gates passed: bit-identity (4 load paths), varint-mmap "
              "refusal, %s2x mmap, 2x varint\n",
              num_samples >= 100'000 ? "" : "(disarmed: pool < 100k) ");

  std::filesystem::remove(v3_nop_path);
  std::filesystem::remove(v3_var_path);
  std::filesystem::remove(v2_path);
  json.WriteTo(flags.json_path);
  return 0;
}
