// Micro-benchmarks for the bidirected-tree evaluator: the O(n) exact
// boosted-spread computation and one Greedy-Boost round.

#include <benchmark/benchmark.h>

#include "src/tree/tree_evaluator.h"
#include "src/tree/tree_generators.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

BidirectedTree MakeTree(NodeId n) {
  Rng rng(11);
  TreeProbModel model;
  BidirectedTree tree = BuildCompleteBinaryTree(n, model, rng);
  return WithTreeSeeds(tree, 50, /*influential=*/false, rng);
}

void BM_TreeEvaluatorCompute(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  BidirectedTree tree = MakeTree(n);
  TreeBoostEvaluator eval(tree);
  std::vector<uint8_t> boost(n, 0);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) boost[rng.NextBounded(n)] = 1;
  for (auto _ : state) {
    eval.Compute(boost);
    benchmark::DoNotOptimize(eval.boosted_spread());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_TreeEvaluatorCompute)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Complexity(benchmark::oN);

void BM_GreedyBoostOneRound(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  BidirectedTree tree = MakeTree(n);
  for (auto _ : state) {
    GreedyBoostResult r = GreedyBoost(tree, 1);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GreedyBoostOneRound)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace kboost
