// Micro-benchmarks for the influence-maximization substrate: RR-set
// generation throughput and Monte-Carlo diffusion simulation.

#include <benchmark/benchmark.h>

#include "src/expt/datasets.h"
#include "src/expt/seed_selection.h"
#include "src/im/imm.h"
#include "src/im/rr_set.h"
#include "src/sim/ic_model.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

void BM_RrSetGeneration(benchmark::State& state) {
  static Dataset* dataset =
      new Dataset(MakeDataset(SpecByName("digg", 0.02)));
  Rng rng(3);
  RrScratch scratch;
  std::vector<NodeId> rr;
  size_t edges = 0;
  for (auto _ : state) {
    rr.clear();
    edges += GenerateRandomRrSet(dataset->graph, rng, scratch, rr);
    benchmark::DoNotOptimize(rr);
  }
  state.counters["edges/op"] = benchmark::Counter(
      static_cast<double>(edges), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_RrSetGeneration);

void BM_DiffusionSimulation(benchmark::State& state) {
  static Dataset* dataset =
      new Dataset(MakeDataset(SpecByName("digg", 0.02)));
  static std::vector<NodeId>* seeds = new std::vector<NodeId>(
      SelectInfluentialSeeds(dataset->graph, 10, 7, 4));
  SimScratch scratch;
  uint64_t world = 0;
  for (auto _ : state) {
    size_t count = SimulateDiffusionOnce(dataset->graph, *seeds, ++world,
                                         nullptr, scratch);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_DiffusionSimulation);

// Full IMM seed selection: RR-set sampling schedule plus CELF greedy
// max-coverage — the sampling+selection hot path shared with PRR-Boost-LB.
// Arg is the worker count.
void BM_ImmSampleAndSelect(benchmark::State& state) {
  static Dataset* dataset =
      new Dataset(MakeDataset(SpecByName("digg", 0.02)));
  ImmOptions options;
  options.k = 20;
  options.seed = 5;
  options.num_threads = static_cast<int>(state.range(0));
  size_t rr_sets = 0;
  for (auto _ : state) {
    ImmResult result = SelectSeedsImm(dataset->graph, options);
    rr_sets += result.num_rr_sets;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(rr_sets));
}
BENCHMARK(BM_ImmSampleAndSelect)->Arg(1)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kboost
