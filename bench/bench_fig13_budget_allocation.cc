// Regenerates Figure 13: budget allocation between seeding and boosting on
// the Flixster and Flickr stand-ins, for several seed:boost cost ratios.

#include <iostream>

#include "bench/bench_common.h"
#include "bench/bench_flags.h"
#include "src/expt/budget.h"
#include "src/expt/table_printer.h"

int main(int argc, char** argv) {
  using namespace kboost;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Figure 13: budget allocation between seeding and boosting",
      "a mixed budget beats pure seeding (rightmost point); the best mix "
      "moves toward seeding as the cost ratio drops, and differs per "
      "dataset",
      flags);

  // All-budget-on-seeds buys `max_seeds` seeds; one seed trades for
  // `cost_ratio` boosts. Paper: 100 seeds, ratios {100, 200, 400, 800}.
  const size_t max_seeds = flags.full ? 100 : 20;
  const std::vector<double> ratios =
      flags.full ? std::vector<double>{100, 200, 400, 800}
                 : std::vector<double>{10, 20, 40};

  TablePrinter table(
      {"dataset", "cost_ratio", "seed_frac", "seeds", "boosted", "spread"});
  for (const char* name : {"flixster", "flickr"}) {
    Dataset d = MakeDataset(SpecByName(name, flags.scale));
    // One call sweeps every ratio: each (dataset, seed fraction) drives a
    // single BoostSession sampled at the largest budget any ratio needs.
    BudgetAllocationOptions opts;
    opts.max_seeds = max_seeds;
    opts.cost_ratios = ratios;
    opts.seed_fractions = {0.2, 0.4, 0.6, 0.8, 1.0};
    opts.boost_options = MakeBoostOptions(1, flags);  // k set per split
    opts.sim_options.num_simulations = flags.sims;
    opts.sim_options.num_threads = flags.ResolvedThreads();
    for (const BudgetAllocationPoint& p : RunBudgetAllocation(d.graph, opts)) {
      table.AddRow({d.name, FormatDouble(p.cost_ratio, 0),
                    FormatDouble(p.seed_fraction, 1),
                    std::to_string(p.num_seeds),
                    std::to_string(p.num_boosted),
                    FormatDouble(p.boosted_spread, 1)});
    }
  }
  table.Print(std::cout);
  return 0;
}
