// Regenerates Table 3: compression ratio and memory usage with random
// seeds.

#include "bench/bench_common.h"
#include "bench/bench_flags.h"

int main(int argc, char** argv) {
  using namespace kboost;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Table 3: memory usage and compression ratio (random seeds)",
      "compression stays very effective (paper: 39x-547x) though ratios are "
      "lower than with influential seeds; LB memory remains tiny",
      flags);
  RunCompression(SeedMode::kRandom, flags);
  return 0;
}
