// Regenerates Figure 8: effect of the boosting parameter β on the boost of
// influence and the running time (influential seeds, fixed k).

#include <iostream>

#include "bench/bench_common.h"
#include "bench/bench_flags.h"
#include "src/expt/table_printer.h"
#include "src/util/timer.h"

int main(int argc, char** argv) {
  using namespace kboost;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Figure 8: effect of the boosting parameter beta (influential seeds)",
      "boost grows with beta; PRR-Boost's time grows with beta while "
      "PRR-Boost-LB's stays nearly flat",
      flags);

  const size_t k = flags.ks.empty() ? (flags.full ? 1000 : 50) : flags.ks[0];
  TablePrinter table({"dataset", "beta", "boost(PRR)", "boost(LB)",
                      "time(PRR)", "time(LB)"});
  for (const char* name : {"flixster", "twitter", "flickr"}) {
    for (double beta : {2.0, 4.0, 6.0}) {
      BenchInstance instance =
          LoadInstance(name, SeedMode::kInfluential, flags, beta);
      const DirectedGraph& g = instance.dataset.graph;
      if (k + instance.seeds.size() >= g.num_nodes()) continue;
      BoostOptions bopts = MakeBoostOptions(k, flags);
      WallTimer t_full;
      BoostResult full = PrrBoost(g, instance.seeds, bopts);
      const double full_s = t_full.Seconds();
      WallTimer t_lb;
      BoostResult lb = PrrBoostLb(g, instance.seeds, bopts);
      const double lb_s = t_lb.Seconds();
      table.AddRow({instance.dataset.name, FormatDouble(beta, 0),
                    FormatDouble(MeasureBoost(instance, full.best_set, flags)),
                    FormatDouble(MeasureBoost(instance, lb.best_set, flags)),
                    FormatSeconds(full_s), FormatSeconds(lb_s)});
    }
  }
  table.Print(std::cout);
  return 0;
}
