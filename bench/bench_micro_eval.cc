// Micro-benchmarks for the Δ̂ evaluation path: the incremental engine
// (cached per-graph reach state + shard-local gain merge) and the batched
// 64-graphs-per-word estimators versus the pre-incremental engine, which
// re-ran a from-scratch IsActivated/CriticalNodes BFS over every touched
// PRR-graph on every pick. The legacy engine is reimplemented here against
// public APIs so the two can race on the same pool; the fixture aborts if
// their selections are not bit-identical at 1 and 4 threads.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/core/prr_collection.h"
#include "src/core/prr_graph.h"
#include "src/core/prr_sampler.h"
#include "src/expt/datasets.h"
#include "src/expt/seed_selection.h"
#include "src/select/greedy.h"
#include "src/sim/boost_model.h"
#include "src/util/thread_pool.h"

namespace kboost {
namespace {

/// The pre-incremental Δ̂ oracle: every Commit re-evaluates the pick's
/// PRR-graphs with a full scratch CriticalNodes pass (two BFS from the
/// super-seed/root per graph), diffing old and new critical sets through
/// atomic gain updates.
class LegacyDeltaOracle final : public SelectionOracle {
 public:
  LegacyDeltaOracle(const PrrCollection& collection,
                    const std::vector<uint8_t>& excluded, int num_threads)
      : collection_(collection),
        excluded_(excluded),
        threads_(std::max(1, num_threads)),
        n_(collection.num_graph_nodes()),
        boosted_(n_, 0),
        covered_(collection.store().num_graphs(), 0),
        critical_(collection.store().num_graphs()),
        gains_(n_),
        evaluators_(threads_),
        new_critical_(threads_),
        worker_touched_(threads_) {
    for (size_t v = 0; v < n_; ++v) {
      gains_[v].store(0, std::memory_order_relaxed);
    }
    const size_t num_graphs = collection.store().num_graphs();
    for (size_t g = 0; g < num_graphs; ++g) {
      const PrrGraphView view = collection.store().View(g);
      critical_[g].reserve(view.num_critical_count);
      for (uint32_t c : view.critical()) {
        const NodeId global = view.global_ids[c];
        critical_[g].push_back(global);
        if (!excluded_[global]) {
          gains_[global].fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }

  size_t num_candidates() const override { return n_; }
  uint64_t InitialGain(NodeId v) const override {
    return gains_[v].load(std::memory_order_relaxed);
  }
  uint64_t CurrentGain(NodeId v) const override {
    return gains_[v].load(std::memory_order_relaxed);
  }

  void Commit(NodeId pick, std::vector<NodeId>* touched) override {
    boosted_[pick] = 1;
    gains_[pick].store(0, std::memory_order_relaxed);
    const std::span<const uint32_t> graphs_of_pick =
        collection_.GraphsContaining(pick);
    for (auto& t : worker_touched_) t.clear();
    ParallelFor(
        graphs_of_pick.size(), threads_,
        [&](size_t gi, int t) {
          const uint32_t g = graphs_of_pick[gi];
          if (covered_[g]) return;
          std::vector<NodeId>& tl_touched = worker_touched_[t];
          for (NodeId old : critical_[g]) {
            if (!boosted_[old] && !excluded_[old]) {
              gains_[old].fetch_sub(1, std::memory_order_relaxed);
              tl_touched.push_back(old);
            }
          }
          const PrrGraphView view = collection_.store().View(g);
          const bool now_active = evaluators_[t].CriticalNodes(
              view, boosted_.data(), &new_critical_[t]);
          if (now_active) {
            covered_[g] = 1;
            activated_.fetch_add(1, std::memory_order_relaxed);
            critical_[g].clear();
            return;
          }
          critical_[g].clear();
          for (uint32_t c : new_critical_[t]) {
            const NodeId global = view.global_ids[c];
            critical_[g].push_back(global);
            if (!boosted_[global] && !excluded_[global]) {
              gains_[global].fetch_add(1, std::memory_order_relaxed);
              tl_touched.push_back(global);
            }
          }
        },
        /*chunk=*/8);
    for (const std::vector<NodeId>& tl : worker_touched_) {
      touched->insert(touched->end(), tl.begin(), tl.end());
    }
  }

  size_t activated() const {
    return activated_.load(std::memory_order_relaxed);
  }
  std::vector<uint8_t>& boosted() { return boosted_; }

 private:
  const PrrCollection& collection_;
  const std::vector<uint8_t>& excluded_;
  const int threads_;
  const size_t n_;
  std::vector<uint8_t> boosted_;
  std::vector<uint8_t> covered_;
  std::vector<std::vector<NodeId>> critical_;
  std::vector<std::atomic<uint32_t>> gains_;
  std::vector<PrrEvaluator> evaluators_;
  std::vector<std::vector<uint32_t>> new_critical_;
  std::vector<std::vector<NodeId>> worker_touched_;
  std::atomic<size_t> activated_{0};
};

/// Legacy SelectGreedyDelta: the shared greedy loop over the scratch oracle
/// plus the same occurrence-count fallback fill.
PrrCollection::DeltaResult LegacySelectGreedyDelta(
    const PrrCollection& collection, size_t k,
    const std::vector<uint8_t>& excluded, int num_threads) {
  PrrCollection::DeltaResult result;
  if (k == 0 || collection.num_samples() == 0) return result;
  LegacyDeltaOracle oracle(collection, excluded, num_threads);
  GreedyResult greedy = RunLazyGreedy(oracle, k, &excluded);
  result.nodes = std::move(greedy.selected);
  result.pick_gains = std::move(greedy.gains);
  result.activated_samples = oracle.activated();
  if (result.nodes.size() < k) {
    std::vector<uint8_t>& boosted = oracle.boosted();
    std::vector<NodeId> order;
    const size_t n = collection.num_graph_nodes();
    order.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      if (!boosted[v] && !excluded[v] &&
          !collection.GraphsContaining(v).empty()) {
        order.push_back(v);
      }
    }
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      const size_t ca = collection.GraphsContaining(a).size();
      const size_t cb = collection.GraphsContaining(b).size();
      return ca > cb || (ca == cb && a < b);
    });
    for (NodeId v : order) {
      if (result.nodes.size() >= k) break;
      boosted[v] = 1;
      result.nodes.push_back(v);
    }
  }
  result.delta_hat = static_cast<double>(collection.num_graph_nodes()) *
                     static_cast<double>(result.activated_samples) /
                     static_cast<double>(collection.num_samples());
  return result;
}

/// Legacy EstimateDelta: one scratch IsActivated per graph with an atomic
/// activation counter (no word packing).
double LegacyEstimateDelta(const PrrCollection& collection,
                           const std::vector<NodeId>& boost_set,
                           int num_threads) {
  if (collection.num_samples() == 0) return 0.0;
  const std::vector<uint8_t> boosted =
      MakeNodeBitmap(collection.num_graph_nodes(), boost_set);
  std::atomic<size_t> activated{0};
  const int threads = std::max(1, num_threads);
  std::vector<PrrEvaluator> evaluators(threads);
  ParallelFor(
      collection.store().num_graphs(), threads,
      [&](size_t g, int t) {
        if (evaluators[t].IsActivated(collection.store().View(g),
                                      boosted.data())) {
          activated.fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*chunk=*/256);
  return static_cast<double>(collection.num_graph_nodes()) *
         static_cast<double>(activated.load()) /
         static_cast<double>(collection.num_samples());
}

constexpr size_t kSamples = 20000;
constexpr size_t kBudget = 100;

struct Fixture {
  Fixture() : dataset(MakeDataset(SpecByName("digg", 0.02))) {
    seeds = SelectInfluentialSeeds(dataset.graph, 10, 7, 4);
    excluded = MakeNodeBitmap(dataset.graph.num_nodes(), seeds);
    collection = std::make_unique<PrrCollection>(dataset.graph.num_nodes());
    PrrSampler sampler(dataset.graph, seeds, kBudget, /*lb_only=*/false,
                       /*seed=*/11, /*num_threads=*/4);
    sampler.EnsureSamples(*collection, kSamples);
    lb_set = collection->SelectGreedyLowerBound(kBudget, excluded).nodes;

    // Bit-identity gate: the incremental engine must select exactly what
    // the legacy engine selects, at 1 and 4 threads, before any timing runs.
    for (int threads : {1, 4}) {
      const auto legacy =
          LegacySelectGreedyDelta(*collection, kBudget, excluded, threads);
      const auto incremental =
          collection->SelectGreedyDelta(kBudget, excluded, threads,
                                        &eval_state);
      if (legacy.nodes != incremental.nodes ||
          legacy.pick_gains != incremental.pick_gains ||
          legacy.activated_samples != incremental.activated_samples) {
        std::fprintf(stderr,
                     "FATAL: incremental selection diverged from the legacy "
                     "engine at %d threads\n",
                     threads);
        std::abort();
      }
      const double legacy_delta =
          LegacyEstimateDelta(*collection, lb_set, threads);
      const double batched_delta =
          collection->EstimateDelta(lb_set, threads);
      if (legacy_delta != batched_delta) {
        std::fprintf(stderr,
                     "FATAL: batched EstimateDelta diverged at %d threads\n",
                     threads);
        std::abort();
      }
    }

    // Shard-invariance gate: the same pool sampled into S = 4 arenas must
    // select and estimate exactly what the monolithic S = 1 pool does —
    // sample→shard assignment is a pure function of the global sample index,
    // so the partition must be invisible in every answer.
    sharded_collection =
        std::make_unique<PrrCollection>(dataset.graph.num_nodes(), 4);
    PrrSampler sharded_sampler(dataset.graph, seeds, kBudget,
                               /*lb_only=*/false, /*seed=*/11,
                               /*num_threads=*/4);
    sharded_sampler.EnsureSamples(*sharded_collection, kSamples);
    for (int threads : {1, 4}) {
      const auto mono = collection->SelectGreedyDelta(kBudget, excluded,
                                                      threads, &eval_state);
      const auto sharded = sharded_collection->SelectGreedyDelta(
          kBudget, excluded, threads, &sharded_eval_state);
      if (mono.nodes != sharded.nodes ||
          mono.pick_gains != sharded.pick_gains ||
          mono.activated_samples != sharded.activated_samples ||
          collection->EstimateDelta(lb_set, threads) !=
              sharded_collection->EstimateDelta(lb_set, threads) ||
          collection->EstimateMu(lb_set) !=
              sharded_collection->EstimateMu(lb_set)) {
        std::fprintf(stderr,
                     "FATAL: sharded (S=4) selection diverged from the "
                     "monolithic pool at %d threads\n",
                     threads);
        std::abort();
      }
    }
  }

  Dataset dataset;
  // Persistent eval-state arenas (one PrrEvalState per pool shard): keep the
  // timed selection loop measuring selection (the arenas are re-zeroed per
  // run, not re-allocated), matching how the engine's serial path reuses its
  // SolveContext across a sweep.
  ShardedEvalState eval_state;
  ShardedEvalState sharded_eval_state;
  std::vector<NodeId> seeds;
  std::vector<uint8_t> excluded;
  std::unique_ptr<PrrCollection> collection;
  std::unique_ptr<PrrCollection> sharded_collection;  // same pool, S = 4
  std::vector<NodeId> lb_set;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

// The Δ̂ selection phase exactly as full-mode SolveForBudget runs it after
// the LB order: the Δ̂ greedy over the pool. Arg is the worker count.
void BM_DeltaSelectPhase_Legacy(benchmark::State& state) {
  Fixture& f = GetFixture();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result =
        LegacySelectGreedyDelta(*f.collection, kBudget, f.excluded, threads);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DeltaSelectPhase_Legacy)->Arg(1)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_DeltaSelectPhase_Incremental(benchmark::State& state) {
  Fixture& f = GetFixture();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = f.collection->SelectGreedyDelta(kBudget, f.excluded, threads,
                                                  &f.eval_state);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DeltaSelectPhase_Incremental)->Arg(1)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Same selection phase over the S = 4 sharded pool (bit-identical answers,
// per-shard eval state, per-pick fan-out over shard index spans).
void BM_DeltaSelectPhase_Sharded(benchmark::State& state) {
  Fixture& f = GetFixture();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = f.sharded_collection->SelectGreedyDelta(
        kBudget, f.excluded, threads, &f.sharded_eval_state);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DeltaSelectPhase_Sharded)->Arg(1)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The sandwich spot check: Δ̂ of a fixed boost set over every stored graph.
void BM_EstimateDelta_Legacy(benchmark::State& state) {
  Fixture& f = GetFixture();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    double d = LegacyEstimateDelta(*f.collection, f.lb_set, threads);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_EstimateDelta_Legacy)->Arg(1)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_EstimateDelta_Batched(benchmark::State& state) {
  Fixture& f = GetFixture();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    double d = f.collection->EstimateDelta(f.lb_set, threads);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_EstimateDelta_Batched)->Arg(1)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_EstimateMu(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    double mu = f.collection->EstimateMu(f.lb_set);
    benchmark::DoNotOptimize(mu);
  }
}
BENCHMARK(BM_EstimateMu);

}  // namespace
}  // namespace kboost
