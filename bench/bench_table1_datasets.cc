// Regenerates Table 1: dataset statistics and the expected influence of the
// influential and random seed sets.

#include <iostream>

#include "bench/bench_common.h"
#include "bench/bench_flags.h"
#include "src/expt/seed_selection.h"
#include "src/expt/table_printer.h"
#include "src/sim/ic_model.h"

int main(int argc, char** argv) {
  using namespace kboost;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Table 1: statistics of datasets and seeds",
      "twitter stand-in has the largest influence (dense, high p); flickr "
      "the smallest (p~0.013); influential seeds dominate random seeds "
      "per-seed on every dataset",
      flags);

  TablePrinter table({"dataset", "nodes", "edges", "avg_p", "inf_seeds",
                      "influence(inf)", "rand_seeds", "influence(rand)",
                      "per_seed(inf)", "per_seed(rand)"});
  SimulationOptions sim;
  sim.num_simulations = flags.sims;
  sim.num_threads = flags.ResolvedThreads();
  for (const char* name : {"digg", "flixster", "twitter", "flickr"}) {
    Dataset d = MakeDataset(SpecByName(name, flags.scale));
    auto influential = SelectInfluentialSeeds(
        d.graph, SeedCountFor(SeedMode::kInfluential, flags), flags.seed,
        flags.ResolvedThreads());
    auto random = SelectRandomSeeds(
        d.graph, SeedCountFor(SeedMode::kRandom, flags), flags.seed);
    const double spread_inf = EstimateSpread(d.graph, influential, sim).mean;
    const double spread_rand = EstimateSpread(d.graph, random, sim).mean;
    table.AddRow({d.name, std::to_string(d.graph.num_nodes()),
                  std::to_string(d.graph.num_edges()),
                  FormatDouble(d.graph.AverageProbability(), 3),
                  std::to_string(influential.size()),
                  FormatDouble(spread_inf, 1), std::to_string(random.size()),
                  FormatDouble(spread_rand, 1),
                  FormatDouble(spread_inf / influential.size(), 1),
                  FormatDouble(spread_rand / random.size(), 1)});
  }
  table.Print(std::cout);
  return 0;
}
