// Multi-client network loadgen and CI gate for the kboostd serving
// front-end: C concurrent KboostClient connections replay a mixed query
// stream (budget sweep x all three solve modes) against a KboostServer and
// the wire contract is enforced with aborts, not warnings:
//
//   - every reply received over the socket is BIT-IDENTICAL to the
//     in-process Solve reference for the same request (doubles travel as
//     IEEE-754 bit patterns, so exact == is the gate);
//   - every overload outcome crosses the wire as a typed frame — admission
//     shed (ResourceExhausted), deadline miss (DeadlineExceeded), dispatch
//     queue reject (Unavailable), degraded answer (OK + degraded flag,
//     bit-identical to explicit LB-only) — with zero untyped errors and
//     zero dropped connections;
//   - when a storm drains, the service's admission gauges read empty and
//     the server has no leaked connections or protocol errors.
//
// By default the harness self-hosts a KboostServer on an ephemeral loopback
// port (the same serving stack kboostd runs). With --connect=HOST:PORT it
// drives an externally started kboostd instead; then --graph= and
// --load-pool= must name the same files the daemon was started with so the
// local reference answers from identical pool bits, and --shutdown-server
// sends the SHUTDOWN admin frame when done (CI uses this to stop the
// daemon it started). Saturation qps and client-observed p50/p95/p99 land
// in BENCH_net.json via --json=.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_flags.h"
#include "src/core/boost_session.h"
#include "src/expt/table_printer.h"
#include "src/graph/graph_io.h"
#include "src/io/pool_io.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/net/wire.h"
#include "src/serve/boost_service.h"
#include "src/util/fault.h"
#include "src/util/parse.h"
#include "src/util/stats.h"
#include "src/util/timer.h"

namespace {

using namespace kboost;

// ---- Loadgen-specific flags (stripped before ParseBenchFlags) --------------

struct LoadgenConfig {
  bool external = false;       // --connect given: drive a running kboostd
  std::string host;
  uint16_t port = 0;
  std::string graph_path;      // --graph= (external mode: daemon's graph)
  std::string snapshot_path;   // --load-pool= (external mode: daemon's pool)
  std::string pool = "digg";   // --pool=
  bool shutdown_server = false;  // --shutdown-server: SHUTDOWN frame at end
};

/// Pulls the loadgen's own --connect/--graph/--load-pool/--pool/
/// --shutdown-server out of argv (compacting it in place) so the remainder
/// goes through the shared strict ParseBenchFlags unchanged.
LoadgenConfig ExtractLoadgenFlags(int* argc, char** argv) {
  LoadgenConfig config;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    auto value_of = [&](const char* name) -> const char* {
      const size_t len = std::strlen(name);
      if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
        return arg + len + 1;
      }
      return nullptr;
    };
    if (const char* v = value_of("--connect")) {
      const char* colon = std::strrchr(v, ':');
      uint64_t port64 = 0;
      if (colon == nullptr || colon == v ||
          !ParseUint64(colon + 1, "--connect port", &port64).ok() ||
          port64 == 0 || port64 > 65535) {
        std::fprintf(stderr, "error: --connect wants HOST:PORT, got '%s'\n",
                     v);
        std::exit(1);
      }
      config.external = true;
      config.host.assign(v, colon);
      config.port = static_cast<uint16_t>(port64);
    } else if (const char* v2 = value_of("--graph")) {
      config.graph_path = v2;
    } else if (const char* v3 = value_of("--load-pool")) {
      config.snapshot_path = v3;
    } else if (const char* v4 = value_of("--pool")) {
      config.pool = v4;
    } else if (std::strcmp(arg, "--shutdown-server") == 0) {
      config.shutdown_server = true;
    } else {
      argv[out++] = argv[i];
      continue;
    }
  }
  *argc = out;
  if (config.external &&
      (config.graph_path.empty() || config.snapshot_path.empty())) {
    std::fprintf(stderr,
                 "error: --connect mode needs --graph= and --load-pool= "
                 "(the same files the daemon was started with) so the "
                 "bit-identity reference answers from the same pool bits\n");
    std::exit(1);
  }
  return config;
}

// ---- Bit-identity gate -----------------------------------------------------

bool SameBits(const WireQueryReply& got, const BoostResponse& want) {
  return got.best_set == want.result.best_set &&
         got.best_estimate == want.result.best_estimate &&
         got.lb_set == want.result.lb_set &&
         got.lb_mu_hat == want.result.lb_mu_hat &&
         got.lb_delta_hat == want.result.lb_delta_hat &&
         got.delta_set == want.result.delta_set &&
         got.delta_delta_hat == want.result.delta_delta_hat &&
         got.num_samples == want.result.num_samples &&
         got.num_boostable == want.result.num_boostable &&
         got.pool_budget == static_cast<uint64_t>(want.result.pool_budget);
}

// ---- Storm driver ----------------------------------------------------------

struct NetOutcome {
  size_t answered = 0;
  size_t degraded = 0;
  size_t shed = 0;           // typed ResourceExhausted replies
  size_t deadline_missed = 0;
  size_t unavailable = 0;    // typed Unavailable replies (queue/drain)
  size_t untyped = 0;        // transport failures or unclassifiable codes
  size_t divergent = 0;
  double wall_s = 0.0;
  std::vector<double> ok_latency_ms;
};

/// Fires `per_client` wire queries from each of `clients` connections at
/// host:port and classifies every reply against `reference` (the request's
/// own mode) and `lb_reference` (what a degraded answer must equal).
NetOutcome RunNetStorm(const std::string& host, uint16_t port,
                       const std::vector<WireQuery>& requests,
                       const std::vector<BoostResponse>& reference,
                       const std::vector<BoostResponse>& lb_reference,
                       size_t clients, size_t per_client) {
  std::atomic<size_t> answered{0}, degraded{0}, shed{0}, missed{0};
  std::atomic<size_t> unavailable{0}, untyped{0}, divergent{0};
  std::mutex latency_mutex;
  std::vector<double> latencies;
  std::vector<std::thread> threads;
  WallTimer storm_timer;
  for (size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      StatusOr<std::unique_ptr<KboostClient>> client =
          KboostClient::Connect(host, port);
      if (!client.ok()) {
        std::fprintf(stderr, "loadgen client %zu: connect: %s\n", t,
                     client.status().ToString().c_str());
        untyped.fetch_add(per_client, std::memory_order_relaxed);
        return;
      }
      std::vector<double> local_latencies;
      for (size_t i = 0; i < per_client; ++i) {
        const size_t q = (t * per_client + i) % requests.size();
        WallTimer request_timer;
        StatusOr<WireQueryReply> r = (*client)->Query(requests[q]);
        const double latency_ms = request_timer.Seconds() * 1e3;
        if (!r.ok()) {
          // Transport-level failure: the server dropped us without a typed
          // frame. Exactly what the gate exists to catch.
          std::fprintf(stderr, "untyped transport error: %s\n",
                       r.status().ToString().c_str());
          untyped.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        const StatusCode code = r->status.code();
        if (code == StatusCode::kOk) {
          answered.fetch_add(1, std::memory_order_relaxed);
          local_latencies.push_back(latency_ms);
          const BoostResponse& expect =
              r->degraded ? lb_reference[q] : reference[q];
          if (r->degraded) degraded.fetch_add(1, std::memory_order_relaxed);
          if (!SameBits(*r, expect)) {
            divergent.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (code == StatusCode::kResourceExhausted) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else if (code == StatusCode::kDeadlineExceeded) {
          missed.fetch_add(1, std::memory_order_relaxed);
        } else if (code == StatusCode::kUnavailable) {
          unavailable.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::fprintf(stderr, "untyped reply status: %s\n",
                       r->status.ToString().c_str());
          untyped.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(latency_mutex);
      latencies.insert(latencies.end(), local_latencies.begin(),
                       local_latencies.end());
    });
  }
  for (std::thread& w : threads) w.join();
  NetOutcome o;
  o.answered = answered.load();
  o.degraded = degraded.load();
  o.shed = shed.load();
  o.deadline_missed = missed.load();
  o.unavailable = unavailable.load();
  o.untyped = untyped.load();
  o.divergent = divergent.load();
  o.wall_s = storm_timer.Seconds();
  o.ok_latency_ms = std::move(latencies);
  return o;
}

/// Shared abort gate: every outcome typed, every answer bit-identical, the
/// books balanced, and the service's admission gauges empty after the storm.
void GateOrAbort(const char* scenario, const ServiceStatsSnapshot& stats,
                 const NetOutcome& o, size_t issued) {
  const size_t accounted_total = o.answered + o.shed + o.deadline_missed +
                                 o.unavailable + o.untyped;
  const bool accounted = accounted_total == issued;
  if (o.untyped != 0 || o.divergent != 0 || !accounted ||
      stats.in_flight != 0 || stats.queued != 0) {
    std::fprintf(stderr,
                 "FATAL: %s: %zu untyped errors, %zu divergent answers, "
                 "accounting %s (%zu of %zu), gauges in_flight=%llu "
                 "queued=%llu after drain\n",
                 scenario, o.untyped, o.divergent, accounted ? "ok" : "BROKEN",
                 accounted_total, issued,
                 static_cast<unsigned long long>(stats.in_flight),
                 static_cast<unsigned long long>(stats.queued));
    std::abort();
  }
}

/// Self-host only: the event loop processes client EOFs asynchronously, so
/// poll briefly for the connection gauge to reach zero, then abort on any
/// leak or protocol error. A leaked connection after every client closed
/// means a dropped-without-reply request is stuck somewhere.
void GateServerDrainedOrAbort(const char* scenario,
                              const KboostServer& server) {
  ServerCounters c = server.counters();
  for (int i = 0; i < 200 && c.active_connections != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    c = server.counters();
  }
  if (c.active_connections != 0 || c.protocol_errors != 0) {
    std::fprintf(stderr,
                 "FATAL: %s: server leaked %llu connections, %llu protocol "
                 "errors, after every client closed\n",
                 scenario,
                 static_cast<unsigned long long>(c.active_connections),
                 static_cast<unsigned long long>(c.protocol_errors));
    std::abort();
  }
}

std::vector<double> LatencyRow(BenchJsonWriter* json, const char* prefix,
                               const std::vector<double>& latencies) {
  std::vector<double> q{0.0, 0.0, 0.0};
  if (!latencies.empty()) {
    q = {Quantile(latencies, 0.50), Quantile(latencies, 0.95),
         Quantile(latencies, 0.99)};
    json->Add(std::string(prefix) + "_p50_ms", q[0], "ms");
    json->Add(std::string(prefix) + "_p95_ms", q[1], "ms");
    json->Add(std::string(prefix) + "_p99_ms", q[2], "ms");
  }
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenConfig config = ExtractLoadgenFlags(&argc, argv);
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Loadgen: the kboostd wire protocol under C concurrent clients",
      "every socket reply is bit-identical to the in-process Solve "
      "reference; shed/deadline/degraded/queue-reject outcomes all cross "
      "the wire as typed frames; throughput saturates as clients grow",
      flags);
  FaultInjector::Global().DisarmAll();

  std::vector<size_t> sweep =
      flags.ks.empty() ? std::vector<size_t>{1, 10, 50} : flags.ks;
  const size_t k_max = *std::max_element(sweep.begin(), sweep.end());

  // ---- The mixed stream: budget sweep x all three solve modes ----
  constexpr SolveMode kModes[] = {SolveMode::kAuto, SolveMode::kFull,
                                  SolveMode::kLbOnly};
  const size_t num_queries = 4 * sweep.size() * 3;
  std::vector<WireQuery> requests(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    requests[i].pool = config.pool;
    requests[i].k = sweep[i % sweep.size()];
    requests[i].mode = kModes[(i / sweep.size()) % 3];
    requests[i].num_threads = 1;
  }
  auto to_boost_request = [](const WireQuery& q) {
    BoostRequest r;
    r.pool = q.pool;
    r.k = q.k;
    r.mode = q.mode;
    r.num_threads = q.num_threads;
    r.deadline_ms = q.deadline_ms;
    return r;
  };

  // ---- The in-process reference: the same stream, solved directly ----
  // External mode loads the daemon's own graph + snapshot files so both
  // sides answer from identical bits; self-host mode builds the bench
  // instance and a fresh pool per scenario (deterministic construction).
  DirectedGraph external_graph;
  BenchInstance instance;
  if (config.external) {
    StatusOr<DirectedGraph> g = LoadEdgeList(config.graph_path);
    if (!g.ok()) {
      std::fprintf(stderr, "--graph=%s: %s\n", config.graph_path.c_str(),
                   g.status().ToString().c_str());
      return 1;
    }
    external_graph = std::move(g).value();
  } else {
    instance = LoadInstance("digg", SeedMode::kInfluential, flags);
  }
  const DirectedGraph& g =
      config.external ? external_graph : instance.dataset.graph;

  auto make_pool = [&]() -> std::unique_ptr<BoostSession> {
    StatusOr<std::unique_ptr<BoostSession>> session =
        config.external
            ? LoadPoolSnapshot(g, config.snapshot_path)
            : BoostSession::Create(g, instance.seeds,
                                   MakeBoostOptions(k_max, flags));
    if (!session.ok()) {
      std::fprintf(stderr, "pool: %s\n", session.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(session).value();
  };

  std::vector<BoostResponse> reference(num_queries);
  std::vector<BoostResponse> lb_reference(num_queries);
  std::unique_ptr<BoostService> calm;
  {
    StatusOr<std::unique_ptr<BoostService>> calm_or = BoostService::Create(g);
    if (!calm_or.ok() ||
        !(*calm_or)->AddPool(config.pool, make_pool()).ok()) {
      std::fprintf(stderr, "reference service construction failed\n");
      return 1;
    }
    calm = std::move(calm_or).value();
    SolveContext context;
    for (size_t i = 0; i < num_queries; ++i) {
      StatusOr<BoostResponse> own =
          calm->Solve(to_boost_request(requests[i]), &context);
      BoostRequest lb = to_boost_request(requests[i]);
      lb.mode = SolveMode::kLbOnly;
      StatusOr<BoostResponse> lb_only = calm->Solve(lb, &context);
      if (!own.ok() || !lb_only.ok()) {
        std::fprintf(stderr, "reference query %zu failed\n", i);
        return 1;
      }
      reference[i] = std::move(own).value();
      lb_reference[i] = std::move(lb_only).value();
    }
  }

  TablePrinter table({"scenario", "clients", "offered", "answered", "shed",
                      "missed", "navail", "degraded", "qps", "p99_ms"});
  BenchJsonWriter json;
  auto add_row = [&](const char* scenario, size_t clients, size_t issued,
                     const NetOutcome& o, const std::vector<double>& q) {
    table.AddRow({scenario, std::to_string(clients), std::to_string(issued),
                  std::to_string(o.answered), std::to_string(o.shed),
                  std::to_string(o.deadline_missed),
                  std::to_string(o.unavailable), std::to_string(o.degraded),
                  FormatDouble(static_cast<double>(o.answered) / o.wall_s),
                  FormatDouble(q[2])});
  };

  // ==== External mode: saturation sweep against a running kboostd ====
  if (config.external) {
    double saturation_qps = 0.0;
    size_t saturation_clients = 0;
    std::vector<double> saturation_latencies;
    for (size_t clients : {size_t{1}, size_t{2}, size_t{4}}) {
      const size_t per_client = (2 * num_queries) / clients;
      const size_t issued = clients * per_client;
      NetOutcome o = RunNetStorm(config.host, config.port, requests,
                                 reference, lb_reference, clients,
                                 per_client);
      StatusOr<std::unique_ptr<KboostClient>> admin =
          KboostClient::Connect(config.host, config.port);
      StatusOr<ServiceStatsSnapshot> stats =
          admin.ok() ? (*admin)->Stats()
                     : StatusOr<ServiceStatsSnapshot>(admin.status());
      if (!stats.ok()) {
        std::fprintf(stderr, "FATAL: STATS frame after storm: %s\n",
                     stats.status().ToString().c_str());
        std::abort();
      }
      GateOrAbort("external sweep", *stats, o, issued);
      const double qps = static_cast<double>(o.answered) / o.wall_s;
      json.Add("net/qps_c" + std::to_string(clients), qps, "queries/s");
      if (qps > saturation_qps) {
        saturation_qps = qps;
        saturation_clients = clients;
        saturation_latencies = o.ok_latency_ms;
      }
      std::vector<double> q = LatencyRow(
          &json, ("net/latency_c" + std::to_string(clients)).c_str(),
          o.ok_latency_ms);
      add_row("external", clients, issued, o, q);
    }
    json.Add("net/saturation_qps", saturation_qps, "queries/s");
    json.Add("net/saturation_clients",
             static_cast<double>(saturation_clients), "clients");
    LatencyRow(&json, "net/latency", saturation_latencies);
    if (config.shutdown_server) {
      StatusOr<std::unique_ptr<KboostClient>> admin =
          KboostClient::Connect(config.host, config.port);
      if (!admin.ok() || !(*admin)->Shutdown().ok()) {
        std::fprintf(stderr, "FATAL: SHUTDOWN frame was not acknowledged\n");
        std::abort();
      }
      std::printf("sent SHUTDOWN; server acknowledged and is draining\n");
    }
    std::printf("\n");
    table.Print(std::cout);
    std::printf("\nexternal loadgen gate passed: every reply bit-identical, "
                "zero untyped drops\n");
    json.WriteTo(flags.json_path);
    return 0;
  }

  // ==== Self-host mode: the full gate over a scenario ladder ====
  const std::string host = "127.0.0.1";
  auto start_server = [&](BoostService* service, ServerOptions options)
      -> std::unique_ptr<KboostServer> {
    options.bind_address = host;
    options.port = 0;
    StatusOr<std::unique_ptr<KboostServer>> server =
        KboostServer::Start(service, options);
    if (!server.ok()) {
      std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(server).value();
  };

  // ---- Scenario 1: saturation sweep (unlimited service) ----
  double saturation_qps = 0.0;
  size_t saturation_clients = 0;
  std::vector<double> saturation_latencies;
  {
    ServerOptions server_options;
    server_options.num_workers = 4;
    std::unique_ptr<KboostServer> server =
        start_server(calm.get(), server_options);
    for (size_t clients : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      const size_t per_client = (2 * num_queries) / clients;
      const size_t issued = clients * per_client;
      NetOutcome o = RunNetStorm(host, server->port(), requests, reference,
                                 lb_reference, clients, per_client);
      GateOrAbort("saturation sweep", calm->Stats(), o, issued);
      if (o.answered != issued) {
        // An unlimited service behind a deep dispatch queue answers
        // everything; any other outcome is a typed reject we did not
        // configure.
        std::fprintf(stderr,
                     "FATAL: saturation sweep c=%zu: %zu of %zu answered\n",
                     clients, o.answered, issued);
        std::abort();
      }
      const double qps = static_cast<double>(o.answered) / o.wall_s;
      json.Add("net/qps_c" + std::to_string(clients), qps, "queries/s");
      if (qps > saturation_qps) {
        saturation_qps = qps;
        saturation_clients = clients;
        saturation_latencies = o.ok_latency_ms;
      }
      std::vector<double> q = LatencyRow(
          &json, ("net/latency_c" + std::to_string(clients)).c_str(),
          o.ok_latency_ms);
      add_row("sweep", clients, issued, o, q);
    }
    GateServerDrainedOrAbort("saturation sweep", *server);
    json.Add("net/saturation_qps", saturation_qps, "queries/s");
    json.Add("net/saturation_clients",
             static_cast<double>(saturation_clients), "clients");
    LatencyRow(&json, "net/latency", saturation_latencies);
    std::printf("saturation sweep: peak %s qps at %zu clients, every reply "
                "bit-identical\n",
                FormatDouble(saturation_qps).c_str(), saturation_clients);
  }

  // ---- Scenario 2: admission overload through the wire ----
  // 6 workers race 8 closed-loop clients into a 2+2 admission budget, so
  // some Solve calls are shed: the typed ResourceExhausted must cross the
  // wire as a reply frame, never as a dropped connection.
  {
    BoostService::Options options;
    options.max_in_flight = 2;
    options.max_queued = 2;
    StatusOr<std::unique_ptr<BoostService>> service =
        BoostService::Create(g, options);
    if (!service.ok() ||
        !(*service)->AddPool(config.pool, make_pool()).ok()) {
      std::fprintf(stderr, "overload service construction failed\n");
      return 1;
    }
    ServerOptions server_options;
    server_options.num_workers = 6;
    std::unique_ptr<KboostServer> server =
        start_server(service->get(), server_options);
    const size_t clients = 8, per_client = 12;
    const size_t issued = clients * per_client;
    NetOutcome o = RunNetStorm(host, server->port(), requests, reference,
                               lb_reference, clients, per_client);
    GateOrAbort("admission overload", (*service)->Stats(), o, issued);
    const ServiceStatsSnapshot stats = (*service)->Stats();
    if (o.shed == 0 || stats.shed != o.shed || o.degraded != 0) {
      std::fprintf(stderr,
                   "FATAL: admission overload: shed=%zu (service says %llu), "
                   "degraded=%zu in a scenario with no degradation\n",
                   o.shed, static_cast<unsigned long long>(stats.shed),
                   o.degraded);
      std::abort();
    }
    GateServerDrainedOrAbort("admission overload", *server);
    json.Add("net/overload_shed_rate",
             static_cast<double>(o.shed) / static_cast<double>(issued),
             "fraction");
    add_row("overload", clients, issued, o,
            LatencyRow(&json, "net/overload_latency", o.ok_latency_ms));
    std::printf("admission overload: %zu shed typed over the wire, answers "
                "bit-identical, zero slot leaks\n",
                o.shed);
  }

  // ---- Scenario 3: graceful degradation through the wire ----
  {
    BoostService::Options options;
    options.max_in_flight = 2;
    options.max_queued = 2;
    options.degrade_load_factor = 0.5;
    StatusOr<std::unique_ptr<BoostService>> service =
        BoostService::Create(g, options);
    if (!service.ok() ||
        !(*service)->AddPool(config.pool, make_pool()).ok()) {
      std::fprintf(stderr, "degrade service construction failed\n");
      return 1;
    }
    ServerOptions server_options;
    server_options.num_workers = 6;
    std::unique_ptr<KboostServer> server =
        start_server(service->get(), server_options);
    const size_t clients = 8, per_client = 12;
    const size_t issued = clients * per_client;
    NetOutcome o = RunNetStorm(host, server->port(), requests, reference,
                               lb_reference, clients, per_client);
    GateOrAbort("degrade storm", (*service)->Stats(), o, issued);
    if (o.degraded == 0) {
      std::fprintf(stderr,
                   "FATAL: degrade storm produced zero degraded answers "
                   "under a saturated budget with degrade_load_factor=0.5\n");
      std::abort();
    }
    GateServerDrainedOrAbort("degrade storm", *server);
    json.Add("net/degraded_rate",
             static_cast<double>(o.degraded) /
                 static_cast<double>(std::max<size_t>(o.answered, 1)),
             "fraction");
    add_row("degrade", clients, issued, o,
            LatencyRow(&json, "net/degrade_latency", o.ok_latency_ms));
    std::printf("degrade storm: %zu degraded answers, each bit-identical to "
                "explicit LB-only\n",
                o.degraded);
  }

  // ---- Scenario 4: wire deadlines through the single-budget path ----
  // A 2 ms deadline_ms travels in the query frame; a 10 ms injected stall
  // at solve entry guarantees expiry, so every miss must come back as a
  // typed DeadlineExceeded reply. A deadline-free replay then answers the
  // whole stream bit-identically — the storm poisoned nothing.
  {
    ServerOptions server_options;
    server_options.num_workers = 4;
    std::unique_ptr<KboostServer> server =
        start_server(calm.get(), server_options);
    std::vector<WireQuery> tight = requests;
    for (WireQuery& q : tight) q.deadline_ms = 2;
    FaultInjector::Plan slow;
    slow.delay_micros = 10000;
    FaultInjector::Global().Arm(FaultSite::kSolveStart, slow);
    const size_t clients = 4, per_client = 9;
    const size_t issued = clients * per_client;
    NetOutcome o = RunNetStorm(host, server->port(), tight, reference,
                               lb_reference, clients, per_client);
    FaultInjector::Global().DisarmAll();
    GateOrAbort("deadline storm", calm->Stats(), o, issued);
    if (o.deadline_missed == 0) {
      std::fprintf(stderr,
                   "FATAL: deadline storm recorded zero typed misses with a "
                   "2 ms wire budget against 10 ms stalls\n");
      std::abort();
    }
    std::vector<WireQuery> roomy = requests;
    for (WireQuery& q : roomy) q.deadline_ms = 60000;
    NetOutcome replay = RunNetStorm(host, server->port(), roomy, reference,
                                    lb_reference, 2, num_queries / 2);
    GateOrAbort("deadline-free replay", calm->Stats(), replay, num_queries);
    if (replay.answered != num_queries) {
      std::fprintf(stderr,
                   "FATAL: deadline-free replay answered %zu of %zu\n",
                   replay.answered, num_queries);
      std::abort();
    }
    GateServerDrainedOrAbort("deadline storm", *server);
    json.Add("net/deadline_miss_rate",
             static_cast<double>(o.deadline_missed) /
                 static_cast<double>(issued),
             "fraction");
    add_row("deadline", clients, issued, o,
            std::vector<double>{0.0, 0.0, 0.0});
    std::printf("deadline storm: %zu typed misses over the wire; "
                "deadline-free replay stayed bit-identical\n",
                o.deadline_missed);
  }

  // ---- Scenario 5: dispatch-queue rejects ----
  // One worker stalled 20 ms per solve behind a 1-slot dispatch queue: the
  // connection-level kUnavailable reject fires deterministically, and the
  // rejected connections keep working afterwards (closed-loop clients
  // retry by construction).
  {
    ServerOptions server_options;
    server_options.num_workers = 1;
    server_options.max_dispatch_queue = 1;
    std::unique_ptr<KboostServer> server =
        start_server(calm.get(), server_options);
    FaultInjector::Plan slow;
    slow.delay_micros = 20000;
    FaultInjector::Global().Arm(FaultSite::kSolveStart, slow);
    const size_t clients = 4, per_client = 6;
    const size_t issued = clients * per_client;
    NetOutcome o = RunNetStorm(host, server->port(), requests, reference,
                               lb_reference, clients, per_client);
    FaultInjector::Global().DisarmAll();
    GateOrAbort("queue-reject storm", calm->Stats(), o, issued);
    if (o.unavailable == 0) {
      std::fprintf(stderr,
                   "FATAL: queue-reject storm produced zero typed "
                   "kUnavailable replies from a 1-deep dispatch queue\n");
      std::abort();
    }
    GateServerDrainedOrAbort("queue-reject storm", *server);
    json.Add("net/queue_reject_rate",
             static_cast<double>(o.unavailable) /
                 static_cast<double>(issued),
             "fraction");
    add_row("queue", clients, issued, o,
            std::vector<double>{0.0, 0.0, 0.0});
    std::printf("queue-reject storm: %zu typed kUnavailable rejects, "
                "connections survived and retried\n",
                o.unavailable);
  }

  // ---- Scenario 6: REFRESH mid-storm ----
  // Hot-swap the pool from a snapshot of an identical twin while 4 clients
  // are mid-stream: the version bumps, and because the twin's bits equal
  // the original's, the bit-identity gate must hold across the swap.
  {
    ServerOptions server_options;
    server_options.num_workers = 4;
    std::unique_ptr<KboostServer> server =
        start_server(calm.get(), server_options);
    const char* snapshot = "bench_loadgen_refresh.pool";
    if (!SavePoolSnapshot(*calm->GetPool(config.pool), snapshot).ok()) {
      std::fprintf(stderr, "FATAL: refresh snapshot save failed\n");
      std::abort();
    }
    FaultInjector::Plan slow;  // stretch the storm so the swap lands inside
    slow.delay_micros = 2000;
    FaultInjector::Global().Arm(FaultSite::kSolveStart, slow);
    const size_t clients = 4, per_client = 24;
    const uint64_t version_before = calm->PoolVersion(config.pool);
    NetOutcome o;
    std::thread storm([&] {
      o = RunNetStorm(host, server->port(), requests, reference,
                      lb_reference, clients, per_client);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    StatusOr<std::unique_ptr<KboostClient>> admin =
        KboostClient::Connect(host, server->port());
    StatusOr<WireRefreshReply> refreshed =
        admin.ok() ? (*admin)->Refresh(WireRefresh{config.pool, snapshot})
                   : StatusOr<WireRefreshReply>(admin.status());
    storm.join();
    if (admin.ok()) (*admin)->Close();  // the drain gate wants zero conns
    FaultInjector::Global().DisarmAll();
    std::remove(snapshot);
    if (!refreshed.ok() || !refreshed->status.ok() ||
        refreshed->version != version_before + 1) {
      std::fprintf(stderr, "FATAL: mid-storm REFRESH failed: %s\n",
                   refreshed.ok() ? refreshed->status.ToString().c_str()
                                  : refreshed.status().ToString().c_str());
      std::abort();
    }
    GateOrAbort("refresh mid-storm", calm->Stats(), o,
                clients * per_client);
    if (o.answered != clients * per_client) {
      std::fprintf(stderr,
                   "FATAL: refresh mid-storm answered %zu of %zu\n",
                   o.answered, clients * per_client);
      std::abort();
    }
    GateServerDrainedOrAbort("refresh mid-storm", *server);
    add_row("refresh", clients, clients * per_client, o,
            std::vector<double>{0.0, 0.0, 0.0});
    std::printf("mid-storm REFRESH: version %llu -> %llu, bit-identity held "
                "across the hot swap\n",
                static_cast<unsigned long long>(version_before),
                static_cast<unsigned long long>(refreshed->version));
  }

  std::printf("\n");
  table.Print(std::cout);
  std::printf("\nall loadgen scenarios passed their gates\n");
  json.WriteTo(flags.json_path);
  return 0;
}
