// Regenerates Figure 15: Greedy-Boost vs DP-Boost across tree sizes at
// fixed epsilon = 0.5.

#include <iostream>

#include "bench/bench_flags.h"
#include "src/expt/table_printer.h"
#include "src/tree/dp_boost.h"
#include "src/tree/tree_evaluator.h"
#include "src/tree/tree_generators.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

int main(int argc, char** argv) {
  using namespace kboost;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Figure 15: Greedy-Boost vs DP-Boost, varying tree size",
      "greedy and DP boost curves overlap at every size (greedy is "
      "near-optimal); greedy's time stays near-zero while DP's grows with n",
      flags);

  const std::vector<NodeId> sizes =
      flags.full ? std::vector<NodeId>{1000, 2000, 3000, 4000, 5000}
                 : std::vector<NodeId>{250, 500, 1000};
  const size_t k = flags.ks.empty() ? (flags.full ? 150 : 30) : flags.ks[0];

  TablePrinter table(
      {"nodes", "k", "greedy_boost", "dp_boost", "greedy_time", "dp_time"});
  for (NodeId n : sizes) {
    Rng rng(flags.seed + n);
    TreeProbModel model;
    BidirectedTree tree = BuildCompleteBinaryTree(n, model, rng);
    tree = WithTreeSeeds(tree, 50, /*influential=*/true, rng);

    WallTimer greedy_timer;
    GreedyBoostResult greedy = GreedyBoost(tree, k);
    const double greedy_s = greedy_timer.Seconds();
    DpBoostOptions opts;
    opts.k = k;
    opts.epsilon = 0.5;
    WallTimer dp_timer;
    DpBoostResult dp = DpBoost(tree, opts);
    table.AddRow({std::to_string(n), std::to_string(k),
                  FormatDouble(greedy.boost, 3), FormatDouble(dp.boost, 3),
                  FormatSeconds(greedy_s), FormatSeconds(dp_timer.Seconds())});
  }
  table.Print(std::cout);
  return 0;
}
