// Measures the serving layer's claim to exist: one pool prepared once inside
// a BoostService answering a mixed (k, mode) query stream from 1, 2 and 4
// concurrent client threads. Each request runs its selection single-worker,
// so the client count is the only concurrency variable; throughput should
// scale with clients on a multi-core box (on a 1-core CI container the
// clients time-slice one core and the ratio stays ≈1×).
//
// Every concurrent answer is compared bit-identically against a serial
// reference pass — the process ABORTS on divergence, which is what makes
// this bench double as the CI regression gate for the concurrent serving
// path (like bench_micro_eval does for the incremental engine). A
// refresh-under-load scenario hot-swaps the pool (RefreshPool) beneath 4
// live client threads and aborts on any NotFound, divergence or version
// regression; a final mmap warm-swap scenario snapshots the live pool to a
// v3 file and RefreshPoolFromSnapshot-s it back in as a ZERO-COPY mmap-served
// pool (the service runs with Options::mmap_pools = true) under the same
// 4-client load and gates — plus an assert that the swapped-in arenas really
// are externally backed.
//
// With --json=BENCH_serve.json the throughput per client count and the
// 4-vs-1 ratio are recorded in the BENCH_*.json shape.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_flags.h"
#include "src/core/boost_session.h"
#include "src/expt/table_printer.h"
#include "src/io/pool_io.h"
#include "src/serve/boost_service.h"
#include "src/util/timer.h"

namespace {

using namespace kboost;

bool SameAnswer(const BoostResult& a, const BoostResult& b) {
  return a.best_set == b.best_set && a.best_estimate == b.best_estimate &&
         a.lb_set == b.lb_set && a.lb_mu_hat == b.lb_mu_hat &&
         a.delta_set == b.delta_set && a.delta_delta_hat == b.delta_delta_hat;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Concurrent serving: BoostService query throughput at 1/2/4 clients",
      "one immutable prepared pool serves all clients; aggregate throughput "
      "scales with client count on multi-core hardware, and every answer is "
      "bit-identical to the serial loop",
      flags);

  std::vector<size_t> sweep =
      flags.ks.empty() ? std::vector<size_t>{1, 10, 50, 100} : flags.ks;
  const size_t k_max = *std::max_element(sweep.begin(), sweep.end());

  BenchInstance instance = LoadInstance("digg", SeedMode::kInfluential, flags);
  const DirectedGraph& g = instance.dataset.graph;

  // mmap_pools routes every snapshot load (the mmap warm-swap scenario at
  // the end) through the zero-copy v3 path; directly AddPool-ed sessions
  // are unaffected.
  BoostService::Options service_options;
  service_options.mmap_pools = true;
  StatusOr<std::unique_ptr<BoostService>> service_or =
      BoostService::Create(g, service_options);
  if (!service_or.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service_or.status().ToString().c_str());
    return 1;
  }
  BoostService& service = **service_or;

  WallTimer prepare_timer;
  // The served pool is SHARDED (S = 4): sampling, index warm-up and the
  // later snapshot-free rebuild all fan out over 4 arenas, and every answer
  // below must still be bit-identical to the serial reference.
  BoostOptions pool_options = MakeBoostOptions(k_max, flags);
  pool_options.num_shards = 4;
  StatusOr<std::unique_ptr<BoostSession>> session =
      BoostSession::Create(g, instance.seeds, pool_options);
  if (!session.ok()) {
    std::fprintf(stderr, "session: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  if (Status s = service.AddPool("digg", std::move(*session)); !s.ok()) {
    std::fprintf(stderr, "add pool: %s\n", s.ToString().c_str());
    return 1;
  }
  const double prepare_s = prepare_timer.Seconds();
  size_t theta = 0;
  size_t num_shards = 0;
  std::vector<size_t> shard_graphs;
  {
    // Snapshot the shard layout now — the refresh below swaps this session
    // out, so the reference must not be held across it.
    const PrrCollection& pool = service.GetPool("digg")->engine().collection();
    theta = pool.num_samples();
    num_shards = pool.num_shards();
    for (size_t s = 0; s < num_shards; ++s) {
      shard_graphs.push_back(pool.shard_store(s).num_graphs());
    }
  }
  std::printf("pool prepared once: theta=%zu, shards=%zu, %.3fs\n", theta,
              num_shards, prepare_s);
  std::printf("per-shard stored graphs:");
  for (size_t count : shard_graphs) std::printf(" %zu", count);
  std::printf("\n\n");

  // The query stream: budgets cycle the sweep, every other query downgrades
  // to the O(k) cached-order answer — the cheap/expensive mix a real serving
  // tier sees. Selection runs single-worker per request (see header).
  const size_t num_queries = 64 * sweep.size();
  std::vector<BoostRequest> requests(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    requests[i].pool = "digg";
    requests[i].k = sweep[i % sweep.size()];
    requests[i].mode = i % 2 == 1 ? SolveMode::kLbOnly : SolveMode::kAuto;
    requests[i].num_threads = 1;
  }

  // Serial reference: the bits every concurrent answer must reproduce.
  std::vector<BoostResult> reference(num_queries);
  {
    SolveContext context;
    for (size_t i = 0; i < num_queries; ++i) {
      StatusOr<BoostResponse> r = service.Solve(requests[i], &context);
      if (!r.ok()) {
        std::fprintf(stderr, "serial query %zu: %s\n", i,
                     r.status().ToString().c_str());
        return 1;
      }
      reference[i] = std::move(*r).result;
    }
  }

  TablePrinter table({"clients", "queries/s", "wall_s", "vs_1_client"});
  BenchJsonWriter json;
  double qps_1 = 0.0;
  for (size_t clients : {1u, 2u, 4u}) {
    std::atomic<size_t> mismatches{0};
    WallTimer timer;
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (size_t t = 0; t < clients; ++t) {
      workers.emplace_back([&, t] {
        SolveContext context;
        for (size_t i = t; i < num_queries; i += clients) {
          StatusOr<BoostResponse> r = service.Solve(requests[i], &context);
          if (!r.ok() || !SameAnswer(r.value().result, reference[i])) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    const double secs = timer.Seconds();
    const double qps = static_cast<double>(num_queries) / secs;
    if (clients == 1) qps_1 = qps;
    if (mismatches.load() != 0) {
      // Divergence is a correctness bug, never noise: make CI fail loudly.
      std::fprintf(stderr,
                   "FATAL: %zu of %zu concurrent answers diverged from the "
                   "serial reference at %zu clients\n",
                   mismatches.load(), num_queries, clients);
      std::abort();
    }
    table.AddRow({std::to_string(clients), FormatDouble(qps),
                  FormatDouble(secs), FormatDouble(qps / qps_1) + "x"});
    json.Add("serve/qps_clients_" + std::to_string(clients), qps,
             "queries/s");
    if (clients == 4) json.Add("serve/speedup_c4_vs_c1", qps / qps_1, "x");
  }
  table.Print(std::cout);
  std::printf("\nall %zu queries x {1,2,4} clients bit-identical to the "
              "serial reference\n",
              num_queries);

  // Refresh-under-load: 4 client threads hammer the pool while the main
  // thread rebuilds a session and hot-swaps it in via RefreshPool. The
  // replacement samples with the same rng seed but a DIFFERENT shard count
  // (S = 1 vs the served pool's S = 4), so its answers are bit-identical to
  // the original pool's if and only if the shard partition is truly
  // invisible — every answer, before or after the swap, must still match
  // the serial reference, and the pool name must never come back NotFound.
  // Both violations ABORT, making this the CI regression gate for the
  // hot-swap path AND the sharding determinism guarantee under live load.
  {
    const uint64_t version_before = service.PoolVersion("digg");
    std::atomic<bool> stop{false};
    std::atomic<size_t> refresh_errors{0};
    std::atomic<size_t> refresh_mismatches{0};
    std::atomic<size_t> refresh_queries{0};
    WallTimer refresh_timer;
    std::vector<std::thread> clients;
    for (size_t t = 0; t < 4; ++t) {
      clients.emplace_back([&, t] {
        SolveContext context;
        // Each client cycles the WHOLE mixed stream (phase-shifted per
        // thread), so cheap LB slices and heavy full-mode solves both hit
        // the pool while it is being swapped.
        size_t i = t * (num_queries / 4);
        while (!stop.load(std::memory_order_relaxed)) {
          const size_t q = i % num_queries;
          StatusOr<BoostResponse> r = service.Solve(requests[q], &context);
          if (!r.ok()) {
            refresh_errors.fetch_add(1, std::memory_order_relaxed);
          } else if (!SameAnswer(r.value().result, reference[q])) {
            refresh_mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          refresh_queries.fetch_add(1, std::memory_order_relaxed);
          ++i;
        }
      });
    }
    WallTimer rebuild_timer;
    BoostOptions replacement_options = MakeBoostOptions(k_max, flags);
    replacement_options.num_shards = 1;  // monolithic — must answer the same
    StatusOr<std::unique_ptr<BoostSession>> replacement =
        BoostSession::Create(g, instance.seeds, replacement_options);
    if (!replacement.ok()) {
      std::fprintf(stderr, "refresh session: %s\n",
                   replacement.status().ToString().c_str());
      std::abort();
    }
    if (Status s = service.RefreshPool("digg", std::move(*replacement));
        !s.ok()) {
      std::fprintf(stderr, "refresh: %s\n", s.ToString().c_str());
      std::abort();
    }
    const double rebuild_s = rebuild_timer.Seconds();
    // One more full pass of load against the swapped-in pool before the
    // clients stop, so post-swap answers are exercised under concurrency.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true);
    for (std::thread& c : clients) c.join();
    const double refresh_s = refresh_timer.Seconds();
    const uint64_t version_after = service.PoolVersion("digg");
    if (refresh_errors.load() != 0 || refresh_mismatches.load() != 0 ||
        version_after <= version_before) {
      std::fprintf(stderr,
                   "FATAL: refresh-under-load: %zu errors (NotFound during a "
                   "refresh would land here), %zu divergent answers, version "
                   "%llu -> %llu\n",
                   refresh_errors.load(), refresh_mismatches.load(),
                   static_cast<unsigned long long>(version_before),
                   static_cast<unsigned long long>(version_after));
      std::abort();
    }
    // Post-swap serial pass: the swapped-in pool must answer bit-identically
    // to the original (same options, same rng seed -> same bits).
    {
      SolveContext context;
      for (size_t i = 0; i < num_queries; ++i) {
        StatusOr<BoostResponse> r = service.Solve(requests[i], &context);
        if (!r.ok() || !SameAnswer(r.value().result, reference[i])) {
          std::fprintf(stderr,
                       "FATAL: post-swap answer %zu diverged from the "
                       "fresh-build reference\n",
                       i);
          std::abort();
        }
        if (r.value().pool_version != version_after) {
          std::fprintf(stderr,
                       "FATAL: post-swap answer %zu stamped version %llu, "
                       "expected %llu\n",
                       i,
                       static_cast<unsigned long long>(r.value().pool_version),
                       static_cast<unsigned long long>(version_after));
          std::abort();
        }
      }
    }
    const double refresh_qps =
        static_cast<double>(refresh_queries.load()) / refresh_s;
    std::printf("\nrefresh under load: %zu queries from 4 clients during a "
                "%.3fs rebuild+swap (%.1f q/s), 0 errors, 0 divergent, "
                "version %llu -> %llu\n",
                refresh_queries.load(), refresh_s, refresh_qps,
                static_cast<unsigned long long>(version_before),
                static_cast<unsigned long long>(version_after));
    json.Add("serve/refresh_under_load_qps", refresh_qps, "queries/s");
    json.Add("serve/refresh_under_load_queries",
             static_cast<double>(refresh_queries.load()), "queries");
    json.Add("serve/refresh_rebuild_s", rebuild_s, "s");
  }

  // Mmap warm-swap under load: snapshot the live pool to a v3 file, then
  // RefreshPoolFromSnapshot it back in beneath the same 4-client load. With
  // mmap_pools = true the swapped-in session serves its arenas zero-copy
  // straight out of the mapped file, so this gates the whole mmap lifecycle
  // under concurrency: load → hot-swap → queries on mapped memory → retired
  // pool teardown, with the usual bit-identity / NotFound / version aborts,
  // plus an assert that the served arenas really are externally backed.
  {
    const std::string snapshot_path =
        (std::filesystem::temp_directory_path() / "kboost_serve_mmap.bin")
            .string();
    {
      std::shared_ptr<const BoostSession> current = service.GetPool("digg");
      StatusOr<PoolSaveResult> saved =
          SavePoolSnapshot(*current, snapshot_path, PoolSaveOptions());
      if (!saved.ok()) {
        std::fprintf(stderr, "mmap-swap save: %s\n",
                     saved.status().ToString().c_str());
        std::abort();
      }
      std::printf("\nmmap warm-swap: saved v3 snapshot (%llu bytes, "
                  "%.2f B/sample)\n",
                  static_cast<unsigned long long>(saved->file_bytes),
                  saved->bytes_per_sample);
    }
    const uint64_t version_before = service.PoolVersion("digg");
    std::atomic<bool> stop{false};
    std::atomic<size_t> swap_errors{0};
    std::atomic<size_t> swap_mismatches{0};
    std::atomic<size_t> swap_queries{0};
    std::vector<std::thread> clients;
    for (size_t t = 0; t < 4; ++t) {
      clients.emplace_back([&, t] {
        SolveContext context;
        size_t i = t * (num_queries / 4);
        while (!stop.load(std::memory_order_relaxed)) {
          const size_t q = i % num_queries;
          StatusOr<BoostResponse> r = service.Solve(requests[q], &context);
          if (!r.ok()) {
            swap_errors.fetch_add(1, std::memory_order_relaxed);
          } else if (!SameAnswer(r.value().result, reference[q])) {
            swap_mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          swap_queries.fetch_add(1, std::memory_order_relaxed);
          ++i;
        }
      });
    }
    WallTimer swap_timer;
    if (Status s = service.RefreshPoolFromSnapshot("digg", snapshot_path);
        !s.ok()) {
      std::fprintf(stderr, "mmap-swap refresh: %s\n", s.ToString().c_str());
      std::abort();
    }
    const double swap_s = swap_timer.Seconds();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true);
    for (std::thread& c : clients) c.join();
    const uint64_t version_after = service.PoolVersion("digg");
    if (swap_errors.load() != 0 || swap_mismatches.load() != 0 ||
        version_after <= version_before) {
      std::fprintf(stderr,
                   "FATAL: mmap warm-swap under load: %zu errors, %zu "
                   "divergent answers, version %llu -> %llu\n",
                   swap_errors.load(), swap_mismatches.load(),
                   static_cast<unsigned long long>(version_before),
                   static_cast<unsigned long long>(version_after));
      std::abort();
    }
    // The swapped-in pool must actually be the zero-copy one.
    {
      std::shared_ptr<const BoostSession> mapped = service.GetPool("digg");
      if (mapped == nullptr ||
          !mapped->engine().collection().shard_store(0).external()) {
        std::fprintf(stderr,
                     "FATAL: mmap warm-swap installed an owned-arena pool — "
                     "the zero-copy path was bypassed\n");
        std::abort();
      }
    }
    // Post-swap serial pass: every answer off the mapped arenas must still
    // be bit-identical (and stamped with the new version).
    {
      SolveContext context;
      for (size_t i = 0; i < num_queries; ++i) {
        StatusOr<BoostResponse> r = service.Solve(requests[i], &context);
        if (!r.ok() || !SameAnswer(r.value().result, reference[i])) {
          std::fprintf(stderr,
                       "FATAL: post-mmap-swap answer %zu diverged from the "
                       "reference\n",
                       i);
          std::abort();
        }
        if (r.value().pool_version != version_after) {
          std::fprintf(stderr,
                       "FATAL: post-mmap-swap answer %zu stamped version "
                       "%llu, expected %llu\n",
                       i,
                       static_cast<unsigned long long>(r.value().pool_version),
                       static_cast<unsigned long long>(version_after));
          std::abort();
        }
      }
    }
    std::printf("mmap warm-swap under load: %zu queries from 4 clients, "
                "swap %.3fs, 0 errors, 0 divergent, arenas externally "
                "backed, version %llu -> %llu\n",
                swap_queries.load(), swap_s,
                static_cast<unsigned long long>(version_before),
                static_cast<unsigned long long>(version_after));
    json.Add("serve/mmap_swap_s", swap_s, "s");
    json.Add("serve/mmap_swap_queries",
             static_cast<double>(swap_queries.load()), "queries");
    std::filesystem::remove(snapshot_path);
  }

  // Service metrics over everything this bench issued. last_rebuild_ms is
  // the refresh replacement's Prepare() wall time as the service measured it.
  const ServiceStatsSnapshot stats = service.Stats();
  for (const PoolStatsSnapshot& ps : stats.pools) {
    std::printf("service stats: pool '%s' v%llu, %llu queries, %llu errors, "
                "latency ms mean/p50/p95/ewma = %.3f/%.3f/%.3f/%.3f, "
                "last rebuild %.1f ms\n",
                ps.pool.c_str(), static_cast<unsigned long long>(ps.version),
                static_cast<unsigned long long>(ps.queries),
                static_cast<unsigned long long>(ps.errors), ps.latency_mean_ms,
                ps.latency_p50_ms, ps.latency_p95_ms, ps.latency_ewma_ms,
                ps.last_rebuild_ms);
    std::printf("service stats: pool '%s' overload counters: %llu shed, "
                "%llu deadline misses, %llu degraded, %llu load retries\n",
                ps.pool.c_str(), static_cast<unsigned long long>(ps.shed),
                static_cast<unsigned long long>(ps.deadline_misses),
                static_cast<unsigned long long>(ps.degraded),
                static_cast<unsigned long long>(ps.load_retries));
    json.Add("serve/latency_p50_ms", ps.latency_p50_ms, "ms");
    json.Add("serve/latency_p95_ms", ps.latency_p95_ms, "ms");
    json.Add("serve/latency_ewma_ms", ps.latency_ewma_ms, "ms");
    json.Add("serve/last_rebuild_ms", ps.last_rebuild_ms, "ms");
    json.Add("serve/shed", static_cast<double>(ps.shed), "requests");
    json.Add("serve/deadline_misses",
             static_cast<double>(ps.deadline_misses), "requests");
    json.Add("serve/degraded", static_cast<double>(ps.degraded), "requests");
    json.Add("serve/load_retries", static_cast<double>(ps.load_retries),
             "retries");
  }
  // This bench never configures admission limits, so the gates double as a
  // no-regression check: unlimited admission must shed nothing, time nothing
  // out, and leave no slot held after the last query drains.
  if (stats.shed != 0 || stats.queue_timeouts != 0 || stats.in_flight != 0 ||
      stats.queued != 0) {
    std::fprintf(stderr,
                 "FATAL: unlimited admission recorded shed=%llu "
                 "timeouts=%llu or leaked slots (in_flight=%llu "
                 "queued=%llu)\n",
                 static_cast<unsigned long long>(stats.shed),
                 static_cast<unsigned long long>(stats.queue_timeouts),
                 static_cast<unsigned long long>(stats.in_flight),
                 static_cast<unsigned long long>(stats.queued));
    std::abort();
  }
  json.Add("serve/admitted", static_cast<double>(stats.admitted),
           "requests");

  json.Add("serve/prepare_s", prepare_s, "s");
  json.Add("serve/theta", static_cast<double>(theta), "samples");
  json.Add("serve/num_shards", static_cast<double>(num_shards), "shards");
  for (size_t s = 0; s < shard_graphs.size(); ++s) {
    json.Add("serve/shard_" + std::to_string(s) + "_graphs",
             static_cast<double>(shard_graphs[s]), "graphs");
  }
  json.Add("serve/queries", static_cast<double>(num_queries), "queries");
  json.WriteTo(flags.json_path);
  return 0;
}
