// Measures the serving layer's claim to exist: one pool prepared once inside
// a BoostService answering a mixed (k, mode) query stream from 1, 2 and 4
// concurrent client threads. Each request runs its selection single-worker,
// so the client count is the only concurrency variable; throughput should
// scale with clients on a multi-core box (on a 1-core CI container the
// clients time-slice one core and the ratio stays ≈1×).
//
// Every concurrent answer is compared bit-identically against a serial
// reference pass — the process ABORTS on divergence, which is what makes
// this bench double as the CI regression gate for the concurrent serving
// path (like bench_micro_eval does for the incremental engine). A final
// refresh-under-load scenario hot-swaps the pool (RefreshPool) beneath 4
// live client threads and aborts on any NotFound, divergence or version
// regression.
//
// With --json=BENCH_serve.json the throughput per client count and the
// 4-vs-1 ratio are recorded in the BENCH_*.json shape.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_flags.h"
#include "src/core/boost_session.h"
#include "src/expt/table_printer.h"
#include "src/serve/boost_service.h"
#include "src/util/timer.h"

namespace {

using namespace kboost;

bool SameAnswer(const BoostResult& a, const BoostResult& b) {
  return a.best_set == b.best_set && a.best_estimate == b.best_estimate &&
         a.lb_set == b.lb_set && a.lb_mu_hat == b.lb_mu_hat &&
         a.delta_set == b.delta_set && a.delta_delta_hat == b.delta_delta_hat;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Concurrent serving: BoostService query throughput at 1/2/4 clients",
      "one immutable prepared pool serves all clients; aggregate throughput "
      "scales with client count on multi-core hardware, and every answer is "
      "bit-identical to the serial loop",
      flags);

  std::vector<size_t> sweep =
      flags.ks.empty() ? std::vector<size_t>{1, 10, 50, 100} : flags.ks;
  const size_t k_max = *std::max_element(sweep.begin(), sweep.end());

  BenchInstance instance = LoadInstance("digg", SeedMode::kInfluential, flags);
  const DirectedGraph& g = instance.dataset.graph;

  StatusOr<std::unique_ptr<BoostService>> service_or =
      BoostService::Create(g);
  if (!service_or.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service_or.status().ToString().c_str());
    return 1;
  }
  BoostService& service = **service_or;

  WallTimer prepare_timer;
  // The served pool is SHARDED (S = 4): sampling, index warm-up and the
  // later snapshot-free rebuild all fan out over 4 arenas, and every answer
  // below must still be bit-identical to the serial reference.
  BoostOptions pool_options = MakeBoostOptions(k_max, flags);
  pool_options.num_shards = 4;
  StatusOr<std::unique_ptr<BoostSession>> session =
      BoostSession::Create(g, instance.seeds, pool_options);
  if (!session.ok()) {
    std::fprintf(stderr, "session: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  if (Status s = service.AddPool("digg", std::move(*session)); !s.ok()) {
    std::fprintf(stderr, "add pool: %s\n", s.ToString().c_str());
    return 1;
  }
  const double prepare_s = prepare_timer.Seconds();
  size_t theta = 0;
  size_t num_shards = 0;
  std::vector<size_t> shard_graphs;
  {
    // Snapshot the shard layout now — the refresh below swaps this session
    // out, so the reference must not be held across it.
    const PrrCollection& pool = service.GetPool("digg")->engine().collection();
    theta = pool.num_samples();
    num_shards = pool.num_shards();
    for (size_t s = 0; s < num_shards; ++s) {
      shard_graphs.push_back(pool.shard_store(s).num_graphs());
    }
  }
  std::printf("pool prepared once: theta=%zu, shards=%zu, %.3fs\n", theta,
              num_shards, prepare_s);
  std::printf("per-shard stored graphs:");
  for (size_t count : shard_graphs) std::printf(" %zu", count);
  std::printf("\n\n");

  // The query stream: budgets cycle the sweep, every other query downgrades
  // to the O(k) cached-order answer — the cheap/expensive mix a real serving
  // tier sees. Selection runs single-worker per request (see header).
  const size_t num_queries = 64 * sweep.size();
  std::vector<BoostRequest> requests(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    requests[i].pool = "digg";
    requests[i].k = sweep[i % sweep.size()];
    requests[i].mode = i % 2 == 1 ? SolveMode::kLbOnly : SolveMode::kAuto;
    requests[i].num_threads = 1;
  }

  // Serial reference: the bits every concurrent answer must reproduce.
  std::vector<BoostResult> reference(num_queries);
  {
    SolveContext context;
    for (size_t i = 0; i < num_queries; ++i) {
      StatusOr<BoostResponse> r = service.Solve(requests[i], &context);
      if (!r.ok()) {
        std::fprintf(stderr, "serial query %zu: %s\n", i,
                     r.status().ToString().c_str());
        return 1;
      }
      reference[i] = std::move(*r).result;
    }
  }

  TablePrinter table({"clients", "queries/s", "wall_s", "vs_1_client"});
  BenchJsonWriter json;
  double qps_1 = 0.0;
  for (size_t clients : {1u, 2u, 4u}) {
    std::atomic<size_t> mismatches{0};
    WallTimer timer;
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (size_t t = 0; t < clients; ++t) {
      workers.emplace_back([&, t] {
        SolveContext context;
        for (size_t i = t; i < num_queries; i += clients) {
          StatusOr<BoostResponse> r = service.Solve(requests[i], &context);
          if (!r.ok() || !SameAnswer(r.value().result, reference[i])) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    const double secs = timer.Seconds();
    const double qps = static_cast<double>(num_queries) / secs;
    if (clients == 1) qps_1 = qps;
    if (mismatches.load() != 0) {
      // Divergence is a correctness bug, never noise: make CI fail loudly.
      std::fprintf(stderr,
                   "FATAL: %zu of %zu concurrent answers diverged from the "
                   "serial reference at %zu clients\n",
                   mismatches.load(), num_queries, clients);
      std::abort();
    }
    table.AddRow({std::to_string(clients), FormatDouble(qps),
                  FormatDouble(secs), FormatDouble(qps / qps_1) + "x"});
    json.Add("serve/qps_clients_" + std::to_string(clients), qps,
             "queries/s");
    if (clients == 4) json.Add("serve/speedup_c4_vs_c1", qps / qps_1, "x");
  }
  table.Print(std::cout);
  std::printf("\nall %zu queries x {1,2,4} clients bit-identical to the "
              "serial reference\n",
              num_queries);

  // Refresh-under-load: 4 client threads hammer the pool while the main
  // thread rebuilds a session and hot-swaps it in via RefreshPool. The
  // replacement samples with the same rng seed but a DIFFERENT shard count
  // (S = 1 vs the served pool's S = 4), so its answers are bit-identical to
  // the original pool's if and only if the shard partition is truly
  // invisible — every answer, before or after the swap, must still match
  // the serial reference, and the pool name must never come back NotFound.
  // Both violations ABORT, making this the CI regression gate for the
  // hot-swap path AND the sharding determinism guarantee under live load.
  {
    const uint64_t version_before = service.PoolVersion("digg");
    std::atomic<bool> stop{false};
    std::atomic<size_t> refresh_errors{0};
    std::atomic<size_t> refresh_mismatches{0};
    std::atomic<size_t> refresh_queries{0};
    WallTimer refresh_timer;
    std::vector<std::thread> clients;
    for (size_t t = 0; t < 4; ++t) {
      clients.emplace_back([&, t] {
        SolveContext context;
        // Each client cycles the WHOLE mixed stream (phase-shifted per
        // thread), so cheap LB slices and heavy full-mode solves both hit
        // the pool while it is being swapped.
        size_t i = t * (num_queries / 4);
        while (!stop.load(std::memory_order_relaxed)) {
          const size_t q = i % num_queries;
          StatusOr<BoostResponse> r = service.Solve(requests[q], &context);
          if (!r.ok()) {
            refresh_errors.fetch_add(1, std::memory_order_relaxed);
          } else if (!SameAnswer(r.value().result, reference[q])) {
            refresh_mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          refresh_queries.fetch_add(1, std::memory_order_relaxed);
          ++i;
        }
      });
    }
    WallTimer rebuild_timer;
    BoostOptions replacement_options = MakeBoostOptions(k_max, flags);
    replacement_options.num_shards = 1;  // monolithic — must answer the same
    StatusOr<std::unique_ptr<BoostSession>> replacement =
        BoostSession::Create(g, instance.seeds, replacement_options);
    if (!replacement.ok()) {
      std::fprintf(stderr, "refresh session: %s\n",
                   replacement.status().ToString().c_str());
      std::abort();
    }
    if (Status s = service.RefreshPool("digg", std::move(*replacement));
        !s.ok()) {
      std::fprintf(stderr, "refresh: %s\n", s.ToString().c_str());
      std::abort();
    }
    const double rebuild_s = rebuild_timer.Seconds();
    // One more full pass of load against the swapped-in pool before the
    // clients stop, so post-swap answers are exercised under concurrency.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true);
    for (std::thread& c : clients) c.join();
    const double refresh_s = refresh_timer.Seconds();
    const uint64_t version_after = service.PoolVersion("digg");
    if (refresh_errors.load() != 0 || refresh_mismatches.load() != 0 ||
        version_after <= version_before) {
      std::fprintf(stderr,
                   "FATAL: refresh-under-load: %zu errors (NotFound during a "
                   "refresh would land here), %zu divergent answers, version "
                   "%llu -> %llu\n",
                   refresh_errors.load(), refresh_mismatches.load(),
                   static_cast<unsigned long long>(version_before),
                   static_cast<unsigned long long>(version_after));
      std::abort();
    }
    // Post-swap serial pass: the swapped-in pool must answer bit-identically
    // to the original (same options, same rng seed -> same bits).
    {
      SolveContext context;
      for (size_t i = 0; i < num_queries; ++i) {
        StatusOr<BoostResponse> r = service.Solve(requests[i], &context);
        if (!r.ok() || !SameAnswer(r.value().result, reference[i])) {
          std::fprintf(stderr,
                       "FATAL: post-swap answer %zu diverged from the "
                       "fresh-build reference\n",
                       i);
          std::abort();
        }
        if (r.value().pool_version != version_after) {
          std::fprintf(stderr,
                       "FATAL: post-swap answer %zu stamped version %llu, "
                       "expected %llu\n",
                       i,
                       static_cast<unsigned long long>(r.value().pool_version),
                       static_cast<unsigned long long>(version_after));
          std::abort();
        }
      }
    }
    const double refresh_qps =
        static_cast<double>(refresh_queries.load()) / refresh_s;
    std::printf("\nrefresh under load: %zu queries from 4 clients during a "
                "%.3fs rebuild+swap (%.1f q/s), 0 errors, 0 divergent, "
                "version %llu -> %llu\n",
                refresh_queries.load(), refresh_s, refresh_qps,
                static_cast<unsigned long long>(version_before),
                static_cast<unsigned long long>(version_after));
    json.Add("serve/refresh_under_load_qps", refresh_qps, "queries/s");
    json.Add("serve/refresh_under_load_queries",
             static_cast<double>(refresh_queries.load()), "queries");
    json.Add("serve/refresh_rebuild_s", rebuild_s, "s");
  }

  // Service metrics over everything this bench issued. last_rebuild_ms is
  // the refresh replacement's Prepare() wall time as the service measured it.
  const ServiceStatsSnapshot stats = service.Stats();
  for (const PoolStatsSnapshot& ps : stats.pools) {
    std::printf("service stats: pool '%s' v%llu, %llu queries, %llu errors, "
                "latency ms mean/p50/p95 = %.3f/%.3f/%.3f, "
                "last rebuild %.1f ms\n",
                ps.pool.c_str(), static_cast<unsigned long long>(ps.version),
                static_cast<unsigned long long>(ps.queries),
                static_cast<unsigned long long>(ps.errors), ps.latency_mean_ms,
                ps.latency_p50_ms, ps.latency_p95_ms, ps.last_rebuild_ms);
    json.Add("serve/latency_p50_ms", ps.latency_p50_ms, "ms");
    json.Add("serve/latency_p95_ms", ps.latency_p95_ms, "ms");
    json.Add("serve/last_rebuild_ms", ps.last_rebuild_ms, "ms");
  }

  json.Add("serve/prepare_s", prepare_s, "s");
  json.Add("serve/theta", static_cast<double>(theta), "samples");
  json.Add("serve/num_shards", static_cast<double>(num_shards), "shards");
  for (size_t s = 0; s < shard_graphs.size(); ++s) {
    json.Add("serve/shard_" + std::to_string(s) + "_graphs",
             static_cast<double>(shard_graphs[s]), "graphs");
  }
  json.Add("serve/queries", static_cast<double>(num_queries), "queries");
  json.WriteTo(flags.json_path);
  return 0;
}
