// Regenerates Figure 10: boost of influence vs k with random seeds.

#include "bench/bench_common.h"
#include "bench/bench_flags.h"

int main(int argc, char** argv) {
  using namespace kboost;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Figure 10: boost of influence vs k (random seeds)",
      "same ordering as Fig. 5 (PRR-Boost best, then PRR-Boost-LB, then the "
      "heuristics), with larger relative boosts than the influential case",
      flags);
  RunBoostVsK(SeedMode::kRandom, flags);
  return 0;
}
