// Measures the serving-layer win: a budget sweep through one BoostSession
// (pool sampled once at k_max, every budget answered by selection only)
// against the same sweep as independent PrrBoost() runs (pool resampled from
// scratch at every point — what RunBudgetAllocation and the fig05/fig10/
// fig13 harnesses did before the session refactor).
//
// With --json=BENCH_session_sweep.json the end-to-end times and the speedup
// are recorded in the BENCH_*.json shape for cross-PR comparison.

#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "bench/bench_flags.h"
#include "src/core/boost_session.h"
#include "src/expt/table_printer.h"
#include "src/util/timer.h"

int main(int argc, char** argv) {
  using namespace kboost;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Session sweep: one BoostSession vs fresh PrrBoost() per budget",
      "the session samples the PRR pool exactly once for the whole sweep, "
      "so the sweep runs several times faster end-to-end",
      flags);

  std::vector<size_t> sweep =
      flags.ks.empty() ? std::vector<size_t>{1, 10, 50, 100} : flags.ks;
  std::sort(sweep.begin(), sweep.end());
  const size_t k_max = sweep.back();

  BenchInstance instance = LoadInstance("digg", SeedMode::kInfluential, flags);
  const DirectedGraph& g = instance.dataset.graph;

  // --- One session, pool sampled once at k_max. ---------------------------
  WallTimer session_timer;
  BoostSession session(g, instance.seeds, MakeBoostOptions(k_max, flags));
  std::vector<BoostResult> session_results;
  size_t pools_sampled = 0;
  for (size_t k : sweep) {
    BoostResult r = session.SolveForBudget(k);
    pools_sampled += r.pool_reused ? 0 : 1;
    session_results.push_back(std::move(r));
  }
  const double session_s = session_timer.Seconds();

  // --- The old pipeline: a fresh engine (and pool) per sweep point. -------
  WallTimer fresh_timer;
  std::vector<BoostResult> fresh_results;
  for (size_t k : sweep) {
    fresh_results.push_back(
        PrrBoost(g, instance.seeds, MakeBoostOptions(k, flags)));
  }
  const double fresh_s = fresh_timer.Seconds();
  const double speedup = fresh_s / std::max(session_s, 1e-9);

  TablePrinter table({"k", "session Δ̂", "fresh Δ̂", "session θ", "fresh θ",
                      "pool_reused"});
  for (size_t i = 0; i < sweep.size(); ++i) {
    table.AddRow({std::to_string(sweep[i]),
                  FormatDouble(session_results[i].best_estimate),
                  FormatDouble(fresh_results[i].best_estimate),
                  std::to_string(session_results[i].num_samples),
                  std::to_string(fresh_results[i].num_samples),
                  session_results[i].pool_reused ? "yes" : "no"});
  }
  table.Print(std::cout);
  std::printf("\npools sampled by the session: %zu (of %zu sweep points)\n",
              pools_sampled, sweep.size());
  std::printf("end-to-end: session %.3fs, fresh-per-k %.3fs -> %.2fx\n",
              session_s, fresh_s, speedup);

  BenchJsonWriter json;
  json.Add("session_sweep/session_s", session_s, "s");
  json.Add("session_sweep/fresh_per_k_s", fresh_s, "s");
  json.Add("session_sweep/speedup", speedup, "x");
  json.Add("session_sweep/pools_sampled_session",
           static_cast<double>(pools_sampled), "pools");
  json.Add("session_sweep/pools_sampled_fresh",
           static_cast<double>(sweep.size()), "pools");
  json.Add("session_sweep/theta_session",
           static_cast<double>(session_results.back().num_samples),
           "samples");
  json.WriteTo(flags.json_path);
  return 0;
}
