// Regenerates Figure 7: the sandwich-approximation ratio μ(B)/Δ_S(B) over
// perturbed boost sets (influential seeds).

#include "bench/bench_common.h"
#include "bench/bench_flags.h"

int main(int argc, char** argv) {
  using namespace kboost;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Figure 7: sandwich ratio mu(B)/Delta_S(B) (influential seeds)",
      "ratio close to 1 for small k and degrades as k grows "
      "(paper: >=0.94 / >=0.83 / >=0.74 for k=100/1000/5000)",
      flags);
  RunSandwich(SeedMode::kInfluential, {2.0}, flags);
  return 0;
}
