#ifndef KBOOST_BENCH_BENCH_FLAGS_H_
#define KBOOST_BENCH_BENCH_FLAGS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace kboost {

/// Command-line knobs shared by every figure/table harness. Defaults are
/// laptop-friendly (scaled-down datasets, fewer Monte-Carlo evaluations);
/// `--full` switches to paper-scale sizes where runtimes permit.
struct BenchFlags {
  double scale = 0.02;   ///< dataset size relative to the paper's (Table 1)
  size_t sims = 2000;    ///< Monte-Carlo evaluations (paper: 20,000)
  int threads = 0;       ///< 0 = hardware concurrency (paper: 8)
  double epsilon = 0.5;  ///< PRR-Boost ε (paper: 0.5)
  uint64_t seed = 42;
  bool full = false;     ///< paper-scale mode
  /// Cap on the PRR-graph pool per run (see BoostOptions::max_samples);
  /// keeps low-OPT instances (flickr stand-in) from exploding θ = λ*/OPT.
  size_t max_samples = 1'000'000;
  std::vector<size_t> ks;  ///< override for k sweeps (--k=10,50,100)
  /// When non-empty, harnesses write machine-readable records to this path
  /// (BENCH_micro_prr.json-style: {"benchmarks": [{name, value, unit}]}),
  /// overwriting any previous contents — one file per harness run, giving
  /// future PRs a perf trajectory to compare against.
  std::string json_path;

  int ResolvedThreads() const;
};

/// Parses --scale= --sims= --threads= --epsilon= --seed= --k=a,b,c --full.
/// Prints usage and exits on --help or unknown flags.
BenchFlags ParseBenchFlags(int argc, char** argv);

/// Prints the standard harness banner: what experiment this regenerates and
/// which qualitative shape from the paper it should reproduce.
void PrintBanner(const std::string& experiment, const std::string& shape,
                 const BenchFlags& flags);

}  // namespace kboost

#endif  // KBOOST_BENCH_BENCH_FLAGS_H_
