// Regenerates Figure 12: the sandwich ratio with random seeds.

#include "bench/bench_common.h"
#include "bench/bench_flags.h"

int main(int argc, char** argv) {
  using namespace kboost;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Figure 12: sandwich ratio mu(B)/Delta_S(B) (random seeds)",
      "ratios are lower than the influential-seed case (paper: >=0.76 / "
      ">=0.62 / >=0.47 for k=100/1000/5000) and shrink as k grows",
      flags);
  RunSandwich(SeedMode::kRandom, {2.0}, flags);
  return 0;
}
