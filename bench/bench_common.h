#ifndef KBOOST_BENCH_BENCH_COMMON_H_
#define KBOOST_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "bench/bench_flags.h"
#include "src/core/prr_boost.h"
#include "src/expt/datasets.h"
#include "src/graph/graph.h"

namespace kboost {

/// How the fixed seed set of an experiment is chosen (Sec. VII-A vs VII-B).
enum class SeedMode { kInfluential, kRandom };

/// A dataset together with its experiment seed set.
struct BenchInstance {
  Dataset dataset;
  std::vector<NodeId> seeds;
};

/// Loads the named stand-in dataset and picks the mode's seed set sized per
/// the paper (50 influential / 500 random), scaled alongside the graph.
BenchInstance LoadInstance(const std::string& name, SeedMode mode,
                           const BenchFlags& flags, double beta = 2.0);

/// The number of seeds the mode uses at this scale.
size_t SeedCountFor(SeedMode mode, const BenchFlags& flags);

/// Default k sweep for boost-vs-k figures, scaled from the paper's
/// 100..5000 range; overridden by --k.
std::vector<size_t> DefaultKSweep(const BenchFlags& flags);

/// Monte-Carlo Δ_S(B) with the bench's simulation settings.
double MeasureBoost(const BenchInstance& instance,
                    const std::vector<NodeId>& boost_set,
                    const BenchFlags& flags);

/// Best measured boost across the four HighDegreeGlobal (resp. Local)
/// candidate sets — the paper reports the max over the four definitions.
double BestHighDegreeGlobal(const BenchInstance& instance, size_t k,
                            const BenchFlags& flags);
double BestHighDegreeLocal(const BenchInstance& instance, size_t k,
                           const BenchFlags& flags);

/// BoostOptions prefilled from flags.
BoostOptions MakeBoostOptions(size_t k, const BenchFlags& flags);

/// Collects benchmark records and serializes them in the BENCH_*.json shape
/// Google Benchmark emits with --benchmark_format=json, so one consumer can
/// plot micro and figure benches alike:
///   {"benchmarks": [{"name": ..., "value": ..., "unit": ...}, ...]}
class BenchJsonWriter {
 public:
  void Add(const std::string& name, double value, const std::string& unit);
  /// Writes the collected records to `path`; no-op when path is empty.
  /// Returns false (with a warning on stderr) if the file can't be written.
  bool WriteTo(const std::string& path) const;
  size_t size() const { return records_.size(); }

 private:
  struct Record {
    std::string name;
    double value;
    std::string unit;
  };
  std::vector<Record> records_;
};

/// Generates `count` perturbations of `base_set` (random subsets replaced by
/// other non-seed nodes) for the sandwich-ratio experiments (Figs. 7/9/12).
std::vector<std::vector<NodeId>> PerturbBoostSets(
    const BenchInstance& instance, const std::vector<NodeId>& base_set,
    size_t count, uint64_t seed);

// ---- Shared figure/table drivers (each figure pair differs only in the
// seed mode, exactly as Secs. VII-A and VII-B do) --------------------------

/// Figs. 5/10: boost of influence vs k for all six algorithms.
void RunBoostVsK(SeedMode mode, const BenchFlags& flags);
/// Figs. 6/11: running time of PRR-Boost vs PRR-Boost-LB.
void RunTiming(SeedMode mode, const BenchFlags& flags);
/// Tables 2/3: compression ratio and PRR-graph memory.
void RunCompression(SeedMode mode, const BenchFlags& flags);
/// Figs. 7/9/12: sandwich-approximation ratio μ̂(B)/Δ̂(B) on perturbed sets,
/// for each (dataset, k or beta) row.
void RunSandwich(SeedMode mode, const std::vector<double>& betas,
                 const BenchFlags& flags);

}  // namespace kboost

#endif  // KBOOST_BENCH_BENCH_COMMON_H_
