// Regenerates Table 2: PRR-graph compression ratio and memory usage with
// influential seeds.

#include "bench/bench_common.h"
#include "bench/bench_flags.h"

int main(int argc, char** argv) {
  using namespace kboost;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Table 2: memory usage and compression ratio (influential seeds)",
      "compression shrinks boostable PRR-graphs by orders of magnitude "
      "(paper: 28x-3100x); LB mode needs far less memory than full mode",
      flags);
  RunCompression(SeedMode::kInfluential, flags);
  return 0;
}
