// Regenerates Figure 11: running time with random seeds.

#include "bench/bench_common.h"
#include "bench/bench_flags.h"

int main(int argc, char** argv) {
  using namespace kboost;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Figure 11: running time (random seeds)",
      "PRR-Boost-LB runs up to ~3x faster than PRR-Boost across datasets",
      flags);
  RunTiming(SeedMode::kRandom, flags);
  return 0;
}
