// Micro-benchmarks for the PRR-graph machinery: generation (with and
// without the LB-mode shortcut), the compression ablation, and estimator
// evaluation. These quantify the design choices DESIGN.md §5.6 calls out.

#include <benchmark/benchmark.h>

#include "src/core/prr_collection.h"
#include "src/core/prr_graph.h"
#include "src/expt/datasets.h"
#include "src/expt/seed_selection.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

struct Fixture {
  Fixture() {
    dataset = MakeDataset(SpecByName("digg", 0.02));
    seeds = SelectInfluentialSeeds(dataset.graph, 10, 7, 4);
  }
  Dataset dataset;
  std::vector<NodeId> seeds;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_PrrGenerateFull(benchmark::State& state) {
  Fixture& f = GetFixture();
  PrrGenerator gen(f.dataset.graph, f.seeds);
  Rng rng(1);
  const size_t k = state.range(0);
  size_t edges = 0;
  for (auto _ : state) {
    PrrGenResult r = gen.GenerateRandomRoot(k, /*lb_only=*/false, rng);
    edges += r.edges_examined;
    benchmark::DoNotOptimize(r);
  }
  state.counters["edges/op"] =
      benchmark::Counter(static_cast<double>(edges),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_PrrGenerateFull)->Arg(10)->Arg(100)->Arg(1000);

void BM_PrrGenerateLbOnly(benchmark::State& state) {
  Fixture& f = GetFixture();
  PrrGenerator gen(f.dataset.graph, f.seeds);
  Rng rng(1);
  const size_t k = state.range(0);
  for (auto _ : state) {
    PrrGenResult r = gen.GenerateRandomRoot(k, /*lb_only=*/true, rng);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PrrGenerateLbOnly)->Arg(10)->Arg(100)->Arg(1000);

void BM_PrrEvaluateActivation(benchmark::State& state) {
  Fixture& f = GetFixture();
  PrrGenerator gen(f.dataset.graph, f.seeds);
  Rng rng(2);
  std::vector<PrrGraph> graphs;
  while (graphs.size() < 200) {
    PrrGenResult r = gen.GenerateRandomRoot(100, false, rng);
    if (r.status == PrrStatus::kBoostable) graphs.push_back(std::move(r.graph));
  }
  std::vector<uint8_t> boosted(f.dataset.graph.num_nodes(), 0);
  for (NodeId v = 0; v < 50; ++v) boosted[v * 7 % boosted.size()] = 1;
  PrrEvaluator eval;
  size_t i = 0;
  for (auto _ : state) {
    bool active = eval.IsActivated(graphs[i++ % graphs.size()], boosted.data());
    benchmark::DoNotOptimize(active);
  }
}
BENCHMARK(BM_PrrEvaluateActivation);

void BM_PrrCriticalNodes(benchmark::State& state) {
  Fixture& f = GetFixture();
  PrrGenerator gen(f.dataset.graph, f.seeds);
  Rng rng(3);
  std::vector<PrrGraph> graphs;
  while (graphs.size() < 200) {
    PrrGenResult r = gen.GenerateRandomRoot(100, false, rng);
    if (r.status == PrrStatus::kBoostable) graphs.push_back(std::move(r.graph));
  }
  std::vector<uint8_t> boosted(f.dataset.graph.num_nodes(), 0);
  PrrEvaluator eval;
  std::vector<uint32_t> critical;
  size_t i = 0;
  for (auto _ : state) {
    eval.CriticalNodes(graphs[i++ % graphs.size()], boosted.data(), &critical);
    benchmark::DoNotOptimize(critical);
  }
}
BENCHMARK(BM_PrrCriticalNodes);

}  // namespace
}  // namespace kboost
