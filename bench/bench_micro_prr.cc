// Micro-benchmarks for the PRR-graph machinery: generation (with and
// without the LB-mode shortcut), the compression ablation, and estimator
// evaluation. These quantify the design choices DESIGN.md §5.6 calls out.

#include <benchmark/benchmark.h>

#include "src/core/prr_collection.h"
#include "src/core/prr_graph.h"
#include "src/core/prr_sampler.h"
#include "src/expt/datasets.h"
#include "src/expt/seed_selection.h"
#include "src/sim/boost_model.h"
#include "src/util/rng.h"

namespace kboost {
namespace {

struct Fixture {
  Fixture() {
    dataset = MakeDataset(SpecByName("digg", 0.02));
    seeds = SelectInfluentialSeeds(dataset.graph, 10, 7, 4);
  }
  Dataset dataset;
  std::vector<NodeId> seeds;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_PrrGenerateFull(benchmark::State& state) {
  Fixture& f = GetFixture();
  PrrGenerator gen(f.dataset.graph, f.seeds);
  Rng rng(1);
  const size_t k = state.range(0);
  size_t edges = 0;
  for (auto _ : state) {
    PrrGenResult r = gen.GenerateRandomRoot(k, /*lb_only=*/false, rng);
    edges += r.edges_examined;
    benchmark::DoNotOptimize(r);
  }
  state.counters["edges/op"] =
      benchmark::Counter(static_cast<double>(edges),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_PrrGenerateFull)->Arg(10)->Arg(100)->Arg(1000);

void BM_PrrGenerateLbOnly(benchmark::State& state) {
  Fixture& f = GetFixture();
  PrrGenerator gen(f.dataset.graph, f.seeds);
  Rng rng(1);
  const size_t k = state.range(0);
  for (auto _ : state) {
    PrrGenResult r = gen.GenerateRandomRoot(k, /*lb_only=*/true, rng);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PrrGenerateLbOnly)->Arg(10)->Arg(100)->Arg(1000);

void BM_PrrEvaluateActivation(benchmark::State& state) {
  Fixture& f = GetFixture();
  PrrGenerator gen(f.dataset.graph, f.seeds);
  Rng rng(2);
  std::vector<PrrGraph> graphs;
  while (graphs.size() < 200) {
    PrrGenResult r = gen.GenerateRandomRoot(100, false, rng);
    if (r.status == PrrStatus::kBoostable) graphs.push_back(std::move(r.graph));
  }
  std::vector<uint8_t> boosted(f.dataset.graph.num_nodes(), 0);
  for (NodeId v = 0; v < 50; ++v) boosted[v * 7 % boosted.size()] = 1;
  PrrEvaluator eval;
  size_t i = 0;
  for (auto _ : state) {
    bool active = eval.IsActivated(graphs[i++ % graphs.size()], boosted.data());
    benchmark::DoNotOptimize(active);
  }
}
BENCHMARK(BM_PrrEvaluateActivation);

void BM_PrrCriticalNodes(benchmark::State& state) {
  Fixture& f = GetFixture();
  PrrGenerator gen(f.dataset.graph, f.seeds);
  Rng rng(3);
  std::vector<PrrGraph> graphs;
  while (graphs.size() < 200) {
    PrrGenResult r = gen.GenerateRandomRoot(100, false, rng);
    if (r.status == PrrStatus::kBoostable) graphs.push_back(std::move(r.graph));
  }
  std::vector<uint8_t> boosted(f.dataset.graph.num_nodes(), 0);
  PrrEvaluator eval;
  std::vector<uint32_t> critical;
  size_t i = 0;
  for (auto _ : state) {
    eval.CriticalNodes(graphs[i++ % graphs.size()], boosted.data(), &critical);
    benchmark::DoNotOptimize(critical);
  }
}
BENCHMARK(BM_PrrCriticalNodes);

// The end-to-end hot path the PRR-Boost pipeline spends its time in:
// sample a pool of PRR-graphs, then run greedy Δ̂ selection over it.
// Throughput is reported in samples/s; Arg is the worker count.
void BM_PrrSampleAndSelect(benchmark::State& state) {
  Fixture& f = GetFixture();
  const int threads = static_cast<int>(state.range(0));
  constexpr size_t kSamples = 4000;
  constexpr size_t kBudget = 20;
  const std::vector<uint8_t> excluded =
      MakeNodeBitmap(f.dataset.graph.num_nodes(), f.seeds);
  for (auto _ : state) {
    PrrCollection collection(f.dataset.graph.num_nodes());
    PrrSampler sampler(f.dataset.graph, f.seeds, kBudget, /*lb_only=*/false,
                       /*seed=*/11, threads);
    sampler.EnsureSamples(collection, kSamples);
    auto result = collection.SelectGreedyDelta(kBudget, excluded);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSamples));
}
BENCHMARK(BM_PrrSampleAndSelect)->Arg(1)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Same shape for the LB-only pipeline (critical sets + max-coverage).
void BM_PrrSampleAndSelectLb(benchmark::State& state) {
  Fixture& f = GetFixture();
  const int threads = static_cast<int>(state.range(0));
  constexpr size_t kSamples = 8000;
  constexpr size_t kBudget = 20;
  const std::vector<uint8_t> excluded =
      MakeNodeBitmap(f.dataset.graph.num_nodes(), f.seeds);
  for (auto _ : state) {
    PrrCollection collection(f.dataset.graph.num_nodes());
    PrrSampler sampler(f.dataset.graph, f.seeds, kBudget, /*lb_only=*/true,
                       /*seed=*/11, threads);
    sampler.EnsureSamples(collection, kSamples);
    auto result = collection.SelectGreedyLowerBound(kBudget, excluded);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSamples));
}
BENCHMARK(BM_PrrSampleAndSelectLb)->Arg(1)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kboost
