// Regenerates Figure 5: boost of influence vs k with influential seeds,
// PRR-Boost / PRR-Boost-LB against the four baselines on all datasets.

#include "bench/bench_common.h"
#include "bench/bench_flags.h"

int main(int argc, char** argv) {
  using namespace kboost;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Figure 5: boost of influence vs k (influential seeds)",
      "PRR-Boost always best; PRR-Boost-LB within a few percent; both beat "
      "HighDegree/PageRank by a clear margin and MoreSeeds is worst",
      flags);
  RunBoostVsK(SeedMode::kInfluential, flags);
  return 0;
}
