// Regenerates Figure 14: Greedy-Boost vs DP-Boost on complete binary
// bidirected trees, varying DP-Boost's epsilon and the budget k.

#include <iostream>

#include "bench/bench_flags.h"
#include "src/expt/table_printer.h"
#include "src/tree/dp_boost.h"
#include "src/tree/tree_evaluator.h"
#include "src/tree/tree_generators.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

int main(int argc, char** argv) {
  using namespace kboost;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Figure 14: Greedy-Boost vs DP-Boost, varying epsilon (trees)",
      "greedy matches the near-optimal DP value everywhere; DP time drops "
      "sharply as epsilon grows while the boost barely changes; greedy is "
      "orders of magnitude faster",
      flags);

  const NodeId n = flags.full ? 2000 : 500;
  const std::vector<size_t> ks =
      flags.ks.empty()
          ? (flags.full ? std::vector<size_t>{50, 150, 250}
                        : std::vector<size_t>{20, 40})
          : flags.ks;
  const std::vector<double> epsilons =
      flags.full ? std::vector<double>{0.2, 0.4, 0.6, 0.8, 1.0}
                 : std::vector<double>{0.5, 1.0};

  Rng rng(flags.seed);
  TreeProbModel model;  // trivalency, beta = 2 (paper Sec. VIII)
  BidirectedTree tree = BuildCompleteBinaryTree(n, model, rng);
  tree = WithTreeSeeds(tree, 50, /*influential=*/true, rng);

  TablePrinter table({"k", "algorithm", "eps", "boost", "time"});
  for (size_t k : ks) {
    WallTimer greedy_timer;
    GreedyBoostResult greedy = GreedyBoost(tree, k);
    table.AddRow({std::to_string(k), "Greedy-Boost", "-",
                  FormatDouble(greedy.boost, 3),
                  FormatSeconds(greedy_timer.Seconds())});
    for (double eps : epsilons) {
      DpBoostOptions opts;
      opts.k = k;
      opts.epsilon = eps;
      WallTimer dp_timer;
      DpBoostResult dp = DpBoost(tree, opts);
      table.AddRow({std::to_string(k), "DP-Boost", FormatDouble(eps, 1),
                    FormatDouble(dp.boost, 3),
                    FormatSeconds(dp_timer.Seconds())});
    }
  }
  table.Print(std::cout);
  return 0;
}
