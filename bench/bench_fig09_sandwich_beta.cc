// Regenerates Figure 9: the sandwich ratio under larger boosting
// parameters β ∈ {4, 5, 6} (influential seeds, fixed k).

#include "bench/bench_common.h"
#include "bench/bench_flags.h"

int main(int argc, char** argv) {
  using namespace kboost;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Figure 9: sandwich ratio with varying beta (influential seeds)",
      "for large boosts the ratio stays roughly constant as beta grows — "
      "the lower bound remains tight when boosting gets stronger",
      flags);
  RunSandwich(SeedMode::kInfluential, {4.0, 5.0, 6.0}, flags);
  return 0;
}
