#include "bench/bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include <fstream>
#include <iostream>

#include "src/baselines/high_degree.h"
#include "src/core/boost_session.h"
#include "src/baselines/more_seeds.h"
#include "src/baselines/pagerank.h"
#include "src/expt/seed_selection.h"
#include "src/expt/table_printer.h"
#include "src/sim/boost_model.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace kboost {

size_t SeedCountFor(SeedMode mode, const BenchFlags& flags) {
  // Paper: 50 influential / 500 random; keep the 1:10 ratio and shrink
  // gently with the scale so tiny instances still have usable seed sets.
  const double base = mode == SeedMode::kInfluential ? 50.0 : 500.0;
  if (flags.full) return static_cast<size_t>(base);
  return std::max<size_t>(mode == SeedMode::kInfluential ? 10 : 50,
                          static_cast<size_t>(base * flags.scale * 20));
}

BenchInstance LoadInstance(const std::string& name, SeedMode mode,
                           const BenchFlags& flags, double beta) {
  BenchInstance instance;
  instance.dataset = MakeDataset(SpecByName(name, flags.scale, beta));
  const size_t count =
      std::min(SeedCountFor(mode, flags), instance.dataset.graph.num_nodes() / 4);
  if (mode == SeedMode::kInfluential) {
    instance.seeds = SelectInfluentialSeeds(instance.dataset.graph, count,
                                            flags.seed,
                                            flags.ResolvedThreads());
  } else {
    instance.seeds =
        SelectRandomSeeds(instance.dataset.graph, count, flags.seed);
  }
  return instance;
}

std::vector<size_t> DefaultKSweep(const BenchFlags& flags) {
  if (!flags.ks.empty()) return flags.ks;
  if (flags.full) return {100, 1000, 2000, 5000};
  return {10, 50, 100, 200};
}

BoostOptions MakeBoostOptions(size_t k, const BenchFlags& flags) {
  BoostOptions options;
  options.k = k;
  options.epsilon = flags.epsilon;
  options.seed = flags.seed;
  options.num_threads = flags.ResolvedThreads();
  options.max_samples = flags.max_samples;
  return options;
}

void BenchJsonWriter::Add(const std::string& name, double value,
                          const std::string& unit) {
  records_.push_back(Record{name, value, unit});
}

bool BenchJsonWriter::WriteTo(const std::string& path) const {
  if (path.empty()) return true;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write bench json to %s\n",
                 path.c_str());
    return false;
  }
  out << "{\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    out << "    {\"name\": \"" << r.name << "\", \"value\": " << r.value
        << ", \"unit\": \"" << r.unit << "\"}"
        << (i + 1 < records_.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return true;
}

double MeasureBoost(const BenchInstance& instance,
                    const std::vector<NodeId>& boost_set,
                    const BenchFlags& flags) {
  SimulationOptions sim;
  sim.num_simulations = flags.sims;
  sim.num_threads = flags.ResolvedThreads();
  sim.seed = flags.seed;
  return EstimateBoost(instance.dataset.graph, instance.seeds, boost_set, sim)
      .boost;
}

double BestHighDegreeGlobal(const BenchInstance& instance, size_t k,
                            const BenchFlags& flags) {
  double best = 0.0;
  for (const auto& set :
       HighDegreeGlobalAll(instance.dataset.graph, instance.seeds, k)) {
    best = std::max(best, MeasureBoost(instance, set, flags));
  }
  return best;
}

double BestHighDegreeLocal(const BenchInstance& instance, size_t k,
                           const BenchFlags& flags) {
  double best = 0.0;
  for (const auto& set :
       HighDegreeLocalAll(instance.dataset.graph, instance.seeds, k)) {
    best = std::max(best, MeasureBoost(instance, set, flags));
  }
  return best;
}

std::vector<std::vector<NodeId>> PerturbBoostSets(
    const BenchInstance& instance, const std::vector<NodeId>& base_set,
    size_t count, uint64_t seed) {
  const size_t n = instance.dataset.graph.num_nodes();
  std::vector<uint8_t> seed_bm =
      MakeNodeBitmap(n, instance.seeds);
  Rng rng(seed);
  std::vector<std::vector<NodeId>> sets;
  sets.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::vector<NodeId> set = base_set;
    if (set.empty()) break;
    // Replace a random number of members with random non-seed outsiders.
    const size_t replace = rng.NextBounded(set.size()) + (i % 2);
    std::vector<uint8_t> in_set = MakeNodeBitmap(n, set);
    for (size_t r = 0; r < replace && r < set.size(); ++r) {
      const size_t pos = rng.NextBounded(set.size());
      for (int attempt = 0; attempt < 64; ++attempt) {
        NodeId candidate = static_cast<NodeId>(rng.NextBounded(n));
        if (!seed_bm[candidate] && !in_set[candidate]) {
          in_set[set[pos]] = 0;
          set[pos] = candidate;
          in_set[candidate] = 1;
          break;
        }
      }
    }
    sets.push_back(std::move(set));
  }
  return sets;
}

namespace {

const char* kAllDatasets[] = {"digg", "flixster", "twitter", "flickr"};

std::string ModeName(SeedMode mode) {
  return mode == SeedMode::kInfluential ? "influential" : "random";
}

}  // namespace

void RunBoostVsK(SeedMode mode, const BenchFlags& flags) {
  TablePrinter table({"dataset", "k", "PRR-Boost", "PRR-Boost-LB",
                      "HighDegGlobal", "HighDegLocal", "PageRank",
                      "MoreSeeds"});
  for (const char* name : kAllDatasets) {
    BenchInstance instance = LoadInstance(name, mode, flags);
    const DirectedGraph& g = instance.dataset.graph;
    std::vector<size_t> sweep;
    for (size_t k : DefaultKSweep(flags)) {
      if (k + instance.seeds.size() < g.num_nodes()) sweep.push_back(k);
    }
    if (sweep.empty()) continue;
    // One session per (dataset, seed set) and mode: the PRR pools are
    // sampled once at the largest k of the sweep; every smaller k is
    // selection-only on the shared pools.
    const size_t k_max = *std::max_element(sweep.begin(), sweep.end());
    BoostSession full_session(g, instance.seeds,
                              MakeBoostOptions(k_max, flags));
    BoostSession lb_session(g, instance.seeds, MakeBoostOptions(k_max, flags),
                            /*lb_only=*/true);
    for (size_t k : sweep) {
      BoostResult prr = full_session.SolveForBudget(k);
      BoostResult lb = lb_session.SolveForBudget(k);
      ImmOptions mopts;
      mopts.k = k;
      mopts.seed = flags.seed;
      mopts.num_threads = flags.ResolvedThreads();
      std::vector<NodeId> more = SelectMoreSeeds(g, instance.seeds, mopts);
      table.AddRow({instance.dataset.name, std::to_string(k),
                    FormatDouble(MeasureBoost(instance, prr.best_set, flags)),
                    FormatDouble(MeasureBoost(instance, lb.best_set, flags)),
                    FormatDouble(BestHighDegreeGlobal(instance, k, flags)),
                    FormatDouble(BestHighDegreeLocal(instance, k, flags)),
                    FormatDouble(MeasureBoost(
                        instance, PageRankBoost(g, instance.seeds, k), flags)),
                    FormatDouble(MeasureBoost(instance, more, flags))});
    }
  }
  table.Print(std::cout);
}

void RunTiming(SeedMode mode, const BenchFlags& flags) {
  TablePrinter table({"dataset", "k", "PRR-Boost(s)", "PRR-Boost-LB(s)",
                      "speedup", "theta", "boostable"});
  BenchJsonWriter json;
  for (const char* name : kAllDatasets) {
    BenchInstance instance = LoadInstance(name, mode, flags);
    for (size_t k : DefaultKSweep(flags)) {
      if (k + instance.seeds.size() >= instance.dataset.graph.num_nodes()) {
        continue;
      }
      BoostOptions bopts = MakeBoostOptions(k, flags);
      WallTimer full_timer;
      BoostResult full = PrrBoost(instance.dataset.graph, instance.seeds, bopts);
      const double full_s = full_timer.Seconds();
      WallTimer lb_timer;
      PrrBoostLb(instance.dataset.graph, instance.seeds, bopts);
      const double lb_s = lb_timer.Seconds();
      table.AddRow({instance.dataset.name, std::to_string(k),
                    FormatDouble(full_s, 3), FormatDouble(lb_s, 3),
                    FormatDouble(full_s / std::max(lb_s, 1e-9), 1) + "x",
                    std::to_string(full.num_samples),
                    std::to_string(full.num_boostable)});
      const std::string prefix =
          "timing/" + ModeName(mode) + "/" + instance.dataset.name +
          "/k=" + std::to_string(k) + "/";
      json.Add(prefix + "prr_boost_s", full_s, "s");
      json.Add(prefix + "prr_boost_lb_s", lb_s, "s");
      json.Add(prefix + "samples_per_s",
               static_cast<double>(full.num_samples) / std::max(full_s, 1e-9),
               "samples/s");
    }
  }
  table.Print(std::cout);
  json.WriteTo(flags.json_path);
}

void RunCompression(SeedMode mode, const BenchFlags& flags) {
  std::vector<size_t> ks = flags.ks;
  if (ks.empty()) ks = flags.full ? std::vector<size_t>{100, 5000}
                                  : std::vector<size_t>{20, 200};
  TablePrinter table({"k", "dataset", "uncompressed", "compressed",
                      "ratio", "full_mem", "lb_mem"});
  for (size_t k : ks) {
    for (const char* name : kAllDatasets) {
      BenchInstance instance = LoadInstance(name, mode, flags);
      if (k + instance.seeds.size() >= instance.dataset.graph.num_nodes()) {
        continue;
      }
      BoostOptions bopts = MakeBoostOptions(k, flags);
      BoostResult full = PrrBoost(instance.dataset.graph, instance.seeds, bopts);
      BoostResult lb = PrrBoostLb(instance.dataset.graph, instance.seeds, bopts);
      table.AddRow({std::to_string(k), instance.dataset.name,
                    FormatDouble(full.avg_uncompressed_edges),
                    FormatDouble(full.avg_compressed_edges),
                    FormatDouble(full.compression_ratio, 1),
                    FormatBytes(full.stored_graph_bytes),
                    FormatBytes(lb.stored_graph_bytes)});
    }
  }
  table.Print(std::cout);
}

void RunSandwich(SeedMode mode, const std::vector<double>& betas,
                 const BenchFlags& flags) {
  std::vector<size_t> ks = flags.ks;
  if (ks.empty()) ks = flags.full ? std::vector<size_t>{100, 1000, 5000}
                                  : std::vector<size_t>{20, 100, 200};
  if (betas.size() > 1) ks = {ks[std::min<size_t>(1, ks.size() - 1)]};
  TablePrinter table({"dataset", "beta", "k", "sets", "min_ratio",
                      "avg_ratio", "delta(Bsa)"});
  for (const char* name : kAllDatasets) {
    for (double beta : betas) {
      BenchInstance instance = LoadInstance(name, mode, flags, beta);
      const DirectedGraph& g = instance.dataset.graph;
      for (size_t k : ks) {
        if (k + instance.seeds.size() >= g.num_nodes()) continue;
        PrrBoostEngine engine(g, instance.seeds, MakeBoostOptions(k, flags),
                              /*lb_only=*/false);
        BoostResult result = engine.Run();
        const double delta_sa =
            engine.EstimateDelta(result.best_set);
        // 300 perturbed sets, as in the paper; keep those achieving at
        // least half of Δ̂(B_sa).
        auto sets = PerturbBoostSets(instance, result.best_set, 300,
                                     flags.seed + k);
        double min_ratio = 1.0, sum_ratio = 0.0;
        size_t used = 0;
        for (const auto& set : sets) {
          const double delta = engine.EstimateDelta(set);
          if (delta < 0.5 * delta_sa || delta <= 0.0) continue;
          const double ratio = engine.EstimateMu(set) / delta;
          min_ratio = std::min(min_ratio, ratio);
          sum_ratio += ratio;
          ++used;
        }
        table.AddRow({instance.dataset.name, FormatDouble(beta, 0),
                      std::to_string(k), std::to_string(used),
                      used ? FormatDouble(min_ratio) : "-",
                      used ? FormatDouble(sum_ratio / used) : "-",
                      FormatDouble(delta_sa)});
      }
    }
  }
  table.Print(std::cout);
  std::printf("\n(mode: %s seeds)\n", ModeName(mode).c_str());
}

}  // namespace kboost
