// Overload bench and CI gate for the admission/deadline/degradation stack:
// a BoostService with a small admission budget takes ≥2× its capacity in
// offered load from closed-loop clients, and the contract is enforced with
// aborts, not warnings:
//
//   - every rejection is typed (ResourceExhausted shed or DeadlineExceeded) —
//     overload never surfaces as a crash or an untyped error;
//   - every admitted, non-degraded answer is bit-identical to the serial
//     reference;
//   - when the storm drains, the admission gauges read empty (no slot leaks)
//     and the lifetime counters reconcile exactly with what clients saw;
//   - degraded answers (scenario 2) are bit-identical to explicit kLbOnly;
//   - after a deadline storm (scenario 3), a deadline-free replay records
//     ZERO new misses.
//
// With --json=BENCH_overload.json the saturation throughput, shed rate,
// client-observed p50/p95/p99 latency and degraded fraction are recorded.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_flags.h"
#include "src/core/boost_session.h"
#include "src/expt/table_printer.h"
#include "src/serve/boost_service.h"
#include "src/util/fault.h"
#include "src/util/stats.h"
#include "src/util/timer.h"

namespace {

using namespace kboost;

bool SameAnswer(const BoostResult& a, const BoostResult& b) {
  return a.best_set == b.best_set && a.best_estimate == b.best_estimate &&
         a.lb_set == b.lb_set && a.lb_mu_hat == b.lb_mu_hat &&
         a.delta_set == b.delta_set && a.delta_delta_hat == b.delta_delta_hat;
}

struct StormOutcome {
  size_t answered = 0;
  size_t degraded = 0;
  size_t shed = 0;
  size_t deadline_missed = 0;
  size_t untyped = 0;
  size_t divergent = 0;
  double wall_s = 0.0;
  std::vector<double> ok_latency_ms;  // client-observed, admitted answers
};

/// Fires `per_client` requests from each of `clients` closed-loop threads at
/// `service` and classifies every outcome against `reference` (the full-mode
/// bits) and `lb_reference` (what a degraded answer must equal).
StormOutcome RunStorm(const BoostService& service,
                      const std::vector<BoostRequest>& requests,
                      const std::vector<BoostResult>& reference,
                      const std::vector<BoostResult>& lb_reference,
                      size_t clients, size_t per_client) {
  std::atomic<size_t> answered{0}, degraded{0}, shed{0}, missed{0};
  std::atomic<size_t> untyped{0}, divergent{0};
  std::mutex latency_mutex;
  std::vector<double> latencies;
  std::vector<std::thread> workers;
  WallTimer storm_timer;
  for (size_t t = 0; t < clients; ++t) {
    workers.emplace_back([&, t] {
      SolveContext context;
      std::vector<double> local_latencies;
      for (size_t i = 0; i < per_client; ++i) {
        const size_t q = (t * per_client + i) % requests.size();
        WallTimer request_timer;
        StatusOr<BoostResponse> r = service.Solve(requests[q], &context);
        const double latency_ms = request_timer.Seconds() * 1e3;
        if (r.ok()) {
          answered.fetch_add(1, std::memory_order_relaxed);
          local_latencies.push_back(latency_ms);
          const BoostResult& expect =
              r->degraded ? lb_reference[q] : reference[q];
          if (r->degraded) degraded.fetch_add(1, std::memory_order_relaxed);
          if (!SameAnswer(r->result, expect)) {
            divergent.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (r.status().code() == StatusCode::kResourceExhausted) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else if (r.status().code() == StatusCode::kDeadlineExceeded) {
          missed.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::fprintf(stderr, "untyped overload error: %s\n",
                       r.status().ToString().c_str());
          untyped.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(latency_mutex);
      latencies.insert(latencies.end(), local_latencies.begin(),
                       local_latencies.end());
    });
  }
  for (std::thread& w : workers) w.join();
  StormOutcome outcome;
  outcome.answered = answered.load();
  outcome.degraded = degraded.load();
  outcome.shed = shed.load();
  outcome.deadline_missed = missed.load();
  outcome.untyped = untyped.load();
  outcome.divergent = divergent.load();
  outcome.wall_s = storm_timer.Seconds();
  outcome.ok_latency_ms = std::move(latencies);
  return outcome;
}

/// Shared abort gate: no untyped errors, no divergent answers, no leaked
/// admission slots, and the service's counters reconcile with the clients'.
void GateOrAbort(const char* scenario, const BoostService& service,
                 const StormOutcome& o, size_t issued) {
  const ServiceStatsSnapshot stats = service.Stats();
  const bool accounted =
      o.answered + o.shed + o.deadline_missed + o.untyped == issued;
  if (o.untyped != 0 || o.divergent != 0 || !accounted ||
      stats.in_flight != 0 || stats.queued != 0) {
    std::fprintf(stderr,
                 "FATAL: %s: %zu untyped errors, %zu divergent answers, "
                 "accounting %s (%zu+%zu+%zu of %zu), gauges in_flight=%llu "
                 "queued=%llu after drain\n",
                 scenario, o.untyped, o.divergent, accounted ? "ok" : "BROKEN",
                 o.answered, o.shed, o.deadline_missed, issued,
                 static_cast<unsigned long long>(stats.in_flight),
                 static_cast<unsigned long long>(stats.queued));
    std::abort();
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Overload: admission control, deadlines and degradation at 2x capacity",
      "excess load sheds with typed statuses at a stable saturation "
      "throughput; admitted answers stay bit-identical to the serial "
      "reference and no admission slot leaks",
      flags);
  FaultInjector::Global().DisarmAll();

  std::vector<size_t> sweep =
      flags.ks.empty() ? std::vector<size_t>{1, 10, 50} : flags.ks;
  const size_t k_max = *std::max_element(sweep.begin(), sweep.end());

  BenchInstance instance = LoadInstance("digg", SeedMode::kInfluential, flags);
  const DirectedGraph& g = instance.dataset.graph;

  // The admission budget under test: 2 solves in flight, 2 waiting. Offered
  // load below is 2x (in_flight + queued) clients, each closed-loop.
  constexpr uint64_t kMaxInFlight = 2;
  constexpr uint64_t kMaxQueued = 2;
  constexpr size_t kClients = 2 * (kMaxInFlight + kMaxQueued);
  constexpr size_t kPerClient = 24;

  // The query stream and its references come from an UNLIMITED service over
  // the same pool bits, so reference answers never shed.
  const size_t num_queries = 16 * sweep.size();
  std::vector<BoostRequest> requests(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    requests[i].pool = "digg";
    requests[i].k = sweep[i % sweep.size()];
    requests[i].num_threads = 1;
  }

  auto make_pool = [&]() -> std::unique_ptr<BoostSession> {
    StatusOr<std::unique_ptr<BoostSession>> session =
        BoostSession::Create(g, instance.seeds,
                             MakeBoostOptions(k_max, flags));
    if (!session.ok()) {
      std::fprintf(stderr, "session: %s\n",
                   session.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(session).value();
  };

  std::vector<BoostResult> reference(num_queries);
  std::vector<BoostResult> lb_reference(num_queries);
  {
    StatusOr<std::unique_ptr<BoostService>> calm = BoostService::Create(g);
    if (!calm.ok() || !(*calm)->AddPool("digg", make_pool()).ok()) {
      std::fprintf(stderr, "reference service construction failed\n");
      return 1;
    }
    SolveContext context;
    for (size_t i = 0; i < num_queries; ++i) {
      StatusOr<BoostResponse> full = (*calm)->Solve(requests[i], &context);
      BoostRequest lb = requests[i];
      lb.mode = SolveMode::kLbOnly;
      StatusOr<BoostResponse> lb_only = (*calm)->Solve(lb, &context);
      if (!full.ok() || !lb_only.ok()) {
        std::fprintf(stderr, "reference query %zu failed\n", i);
        return 1;
      }
      reference[i] = std::move(*full).result;
      lb_reference[i] = std::move(*lb_only).result;
    }
  }

  TablePrinter table({"scenario", "offered", "answered", "shed", "missed",
                      "degraded", "qps"});
  BenchJsonWriter json;

  // ---- Scenario 1: pure admission overload (no deadlines, no degrade) ----
  {
    BoostService::Options options;
    options.max_in_flight = kMaxInFlight;
    options.max_queued = kMaxQueued;
    StatusOr<std::unique_ptr<BoostService>> service_or =
        BoostService::Create(g, options);
    if (!service_or.ok() || !(*service_or)->AddPool("digg", make_pool()).ok()) {
      std::fprintf(stderr, "overload service construction failed\n");
      return 1;
    }
    const BoostService& service = **service_or;
    const size_t issued = kClients * kPerClient;
    StormOutcome o = RunStorm(service, requests, reference, lb_reference,
                              kClients, kPerClient);
    GateOrAbort("admission overload", service, o, issued);
    const ServiceStatsSnapshot stats = service.Stats();
    if (o.shed == 0 || stats.shed != o.shed ||
        stats.pools[0].queries != o.answered || o.degraded != 0 ||
        o.deadline_missed != 0) {
      // 2x offered load against a 4-slot budget MUST shed, the service's
      // books must agree with the clients', and nothing may degrade or miss
      // a deadline in a scenario that configured neither.
      std::fprintf(stderr,
                   "FATAL: admission overload: shed=%zu (service says %llu), "
                   "queries=%llu vs answered=%zu, degraded=%zu, missed=%zu\n",
                   o.shed, static_cast<unsigned long long>(stats.shed),
                   static_cast<unsigned long long>(stats.pools[0].queries),
                   o.answered, o.degraded, o.deadline_missed);
      std::abort();
    }
    const double qps = static_cast<double>(o.answered) / o.wall_s;
    const double shed_rate = static_cast<double>(o.shed) /
                             static_cast<double>(issued);
    table.AddRow({"admission", std::to_string(issued),
                  std::to_string(o.answered), std::to_string(o.shed),
                  std::to_string(o.deadline_missed),
                  std::to_string(o.degraded), FormatDouble(qps)});
    json.Add("overload/saturation_qps", qps, "queries/s");
    json.Add("overload/shed_rate", shed_rate, "fraction");
    json.Add("overload/offered", static_cast<double>(issued), "requests");
    if (!o.ok_latency_ms.empty()) {
      json.Add("overload/latency_p50_ms", Quantile(o.ok_latency_ms, 0.50),
               "ms");
      json.Add("overload/latency_p95_ms", Quantile(o.ok_latency_ms, 0.95),
               "ms");
      json.Add("overload/latency_p99_ms", Quantile(o.ok_latency_ms, 0.99),
               "ms");
    }
    std::printf("admission overload: %zu offered -> %zu answered (all "
                "bit-identical), %zu shed typed, 0 slots leaked\n",
                issued, o.answered, o.shed);
  }

  // ---- Scenario 2: graceful degradation under the same storm ----
  {
    BoostService::Options options;
    options.max_in_flight = kMaxInFlight;
    options.max_queued = kMaxQueued;
    options.degrade_load_factor = 0.5;  // degrade once half the budget is used
    StatusOr<std::unique_ptr<BoostService>> service_or =
        BoostService::Create(g, options);
    if (!service_or.ok() || !(*service_or)->AddPool("digg", make_pool()).ok()) {
      std::fprintf(stderr, "degrade service construction failed\n");
      return 1;
    }
    const BoostService& service = **service_or;
    const size_t issued = kClients * kPerClient;
    StormOutcome o = RunStorm(service, requests, reference, lb_reference,
                              kClients, kPerClient);
    GateOrAbort("degradation storm", service, o, issued);
    const ServiceStatsSnapshot stats = service.Stats();
    if (o.degraded == 0 || stats.pools[0].degraded != o.degraded) {
      // A saturated budget with degrade_load_factor = 0.5 must downgrade
      // some kAuto answers, and Stats() must count exactly those.
      std::fprintf(stderr,
                   "FATAL: degradation storm: %zu degraded answers (service "
                   "says %llu) under a saturated budget\n",
                   o.degraded,
                   static_cast<unsigned long long>(stats.pools[0].degraded));
      std::abort();
    }
    const double qps = static_cast<double>(o.answered) / o.wall_s;
    const double degraded_rate = static_cast<double>(o.degraded) /
                                 static_cast<double>(o.answered);
    table.AddRow({"degrade", std::to_string(issued),
                  std::to_string(o.answered), std::to_string(o.shed),
                  std::to_string(o.deadline_missed),
                  std::to_string(o.degraded), FormatDouble(qps)});
    json.Add("overload/degraded_rate", degraded_rate, "fraction");
    json.Add("overload/degraded_qps", qps, "queries/s");
    std::printf("degradation storm: %zu of %zu answers degraded, every one "
                "bit-identical to explicit LB-only\n",
                o.degraded, o.answered);
  }

  // ---- Scenario 3: deadline storm, then a deadline-free replay ----
  {
    BoostService::Options options;
    options.default_deadline_ms = 2;
    StatusOr<std::unique_ptr<BoostService>> service_or =
        BoostService::Create(g, options);
    if (!service_or.ok() || !(*service_or)->AddPool("digg", make_pool()).ok()) {
      std::fprintf(stderr, "deadline service construction failed\n");
      return 1;
    }
    const BoostService& service = **service_or;
    // Stall every solve 10 ms at entry so the 2 ms default deadline cannot
    // be met — the deterministic way to exercise mid-solve expiry.
    FaultInjector::Plan slow;
    slow.delay_micros = 10000;
    FaultInjector::Global().Arm(FaultSite::kSolveStart, slow);
    const size_t issued = kClients * kPerClient / 4;
    StormOutcome o = RunStorm(service, requests, reference, lb_reference,
                              kClients, kPerClient / 4);
    FaultInjector::Global().DisarmAll();
    GateOrAbort("deadline storm", service, o, issued);
    if (o.deadline_missed == 0) {
      std::fprintf(stderr, "FATAL: deadline storm produced zero misses with "
                           "a 2 ms budget against 10 ms injected stalls\n");
      std::abort();
    }
    // The acceptance criterion: a deadline-free replay of the whole stream
    // records ZERO new misses and answers bit-identically.
    const uint64_t misses_before = service.Stats().pools[0].deadline_misses;
    SolveContext context;
    for (size_t i = 0; i < num_queries; ++i) {
      BoostRequest replay = requests[i];
      replay.deadline_ms = 60000;  // 60 s: present but unreachable
      StatusOr<BoostResponse> r = service.Solve(replay, &context);
      if (!r.ok() || !SameAnswer(r->result, reference[i])) {
        std::fprintf(stderr,
                     "FATAL: deadline-free replay query %zu: %s\n", i,
                     r.ok() ? "diverged from the reference"
                            : r.status().ToString().c_str());
        std::abort();
      }
    }
    const uint64_t new_misses =
        service.Stats().pools[0].deadline_misses - misses_before;
    if (new_misses != 0) {
      std::fprintf(stderr,
                   "FATAL: deadline-free replay recorded %llu misses\n",
                   static_cast<unsigned long long>(new_misses));
      std::abort();
    }
    table.AddRow({"deadline", std::to_string(issued),
                  std::to_string(o.answered), std::to_string(o.shed),
                  std::to_string(o.deadline_missed),
                  std::to_string(o.degraded),
                  FormatDouble(static_cast<double>(o.answered) / o.wall_s)});
    json.Add("overload/deadline_miss_rate",
             static_cast<double>(o.deadline_missed) /
                 static_cast<double>(issued),
             "fraction");
    json.Add("overload/replay_new_misses", static_cast<double>(new_misses),
             "misses");
    std::printf("deadline storm: %zu of %zu requests missed typed; "
                "deadline-free replay recorded 0 new misses\n",
                o.deadline_missed, issued);
  }

  std::printf("\n");
  table.Print(std::cout);
  std::printf("\nall overload scenarios passed their gates\n");
  json.WriteTo(flags.json_path);
  return 0;
}
