// Sweeps the pool shard count S over one fixed workload and measures what
// sharding buys: prepare (sample + warm) wall time, snapshot save wall time
// and size (bytes + bytes/sample), and cold (owned-arena) vs mmap
// (zero-copy v3) load wall time, plus the per-shard stored-graph balance.
// At every S the solve answers are compared bit-identically against the
// S = 1 monolith — the process ABORTS on divergence, so this bench doubles
// as a Release-mode regression gate for the sharding determinism guarantee
// (sample i → shard i mod S, answers invariant in S). Both the cold-loaded
// and mmap-loaded sessions pass through the same gate.
//
// With --json=BENCH_shard_sweep.json each S's numbers land in the
// BENCH_*.json shape.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_flags.h"
#include "src/core/boost_session.h"
#include "src/expt/table_printer.h"
#include "src/io/pool_io.h"
#include "src/util/timer.h"

namespace {

using namespace kboost;

bool SameAnswer(const BoostResult& a, const BoostResult& b) {
  return a.best_set == b.best_set && a.best_estimate == b.best_estimate &&
         a.lb_set == b.lb_set && a.lb_mu_hat == b.lb_mu_hat &&
         a.delta_set == b.delta_set && a.delta_delta_hat == b.delta_delta_hat;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBanner(
      "Shard sweep: pool build / snapshot I/O wall time vs shard count S",
      "prepare and save/load go wide over S arenas with >1 worker while "
      "every solve stays bit-identical to the S=1 monolith",
      flags);

  const size_t k = flags.ks.empty() ? 50 : flags.ks.front();
  BenchInstance instance = LoadInstance("digg", SeedMode::kInfluential, flags);
  const DirectedGraph& g = instance.dataset.graph;
  const std::string snapshot_path =
      (std::filesystem::temp_directory_path() / "kboost_shard_sweep.bin")
          .string();

  // Budgets the bit-identity gate replays at each S.
  const std::vector<size_t> budgets = {1, std::max<size_t>(1, k / 2), k};

  TablePrinter table({"shards", "prepare_s", "save_ms", "snapshot_MB",
                      "B_per_sample", "load_ms", "mmap_ms",
                      "shard_graphs(min..max)"});
  BenchJsonWriter json;
  std::vector<BoostResult> reference;  // S = 1 answers, filled first

  for (const size_t num_shards : {1u, 2u, 4u, 8u}) {
    BoostOptions options = MakeBoostOptions(k, flags);
    options.num_shards = static_cast<int>(num_shards);
    StatusOr<std::unique_ptr<BoostSession>> created =
        BoostSession::Create(g, instance.seeds, options);
    if (!created.ok()) {
      std::fprintf(stderr, "session (S=%zu): %s\n", num_shards,
                   created.status().ToString().c_str());
      return 1;
    }
    BoostSession& session = **created;

    WallTimer prepare_timer;
    session.Prepare();
    const double prepare_s = prepare_timer.Seconds();

    WallTimer save_timer;
    StatusOr<PoolSaveResult> saved =
        SavePoolSnapshot(session, snapshot_path, PoolSaveOptions());
    if (!saved.ok()) {
      std::fprintf(stderr, "save (S=%zu): %s\n", num_shards,
                   saved.status().ToString().c_str());
      return 1;
    }
    const double save_ms = save_timer.Seconds() * 1e3;

    WallTimer load_timer;
    StatusOr<std::unique_ptr<BoostSession>> loaded =
        LoadPoolSnapshot(g, snapshot_path);
    const double load_ms = load_timer.Seconds() * 1e3;
    if (!loaded.ok()) {
      std::fprintf(stderr, "load (S=%zu): %s\n", num_shards,
                   loaded.status().ToString().c_str());
      return 1;
    }

    PoolLoadOptions mmap_options;
    mmap_options.use_mmap = true;
    WallTimer mmap_timer;
    StatusOr<std::unique_ptr<BoostSession>> mapped =
        LoadPoolSnapshot(g, snapshot_path, mmap_options);
    const double mmap_ms = mmap_timer.Seconds() * 1e3;
    if (!mapped.ok()) {
      std::fprintf(stderr, "mmap load (S=%zu): %s\n", num_shards,
                   mapped.status().ToString().c_str());
      return 1;
    }

    // Bit-identity gates: this S against the S = 1 reference, and the
    // loaded snapshot against the pool it was saved from.
    const PrrCollection& pool = session.engine().collection();
    size_t min_graphs = 0, max_graphs = 0;
    for (size_t s = 0; s < pool.num_shards(); ++s) {
      const size_t count = pool.shard_store(s).num_graphs();
      if (s == 0 || count < min_graphs) min_graphs = count;
      max_graphs = std::max(max_graphs, count);
      json.Add("shard_sweep/s" + std::to_string(num_shards) + "/shard_" +
                   std::to_string(s) + "_graphs",
               static_cast<double>(count), "graphs");
    }
    for (size_t i = 0; i < budgets.size(); ++i) {
      BoostResult live = session.SolveForBudget(budgets[i]);
      BoostResult warm = loaded.value()->SolveForBudget(budgets[i]);
      if (!SameAnswer(live, warm)) {
        std::fprintf(stderr,
                     "FATAL: snapshot round trip diverged at S=%zu k=%zu\n",
                     num_shards, budgets[i]);
        std::abort();
      }
      BoostResult zero_copy = mapped.value()->SolveForBudget(budgets[i]);
      if (!SameAnswer(live, zero_copy)) {
        std::fprintf(stderr,
                     "FATAL: mmap-served pool diverged at S=%zu k=%zu\n",
                     num_shards, budgets[i]);
        std::abort();
      }
      if (num_shards == 1) {
        reference.push_back(live);
      } else if (!SameAnswer(live, reference[i])) {
        std::fprintf(stderr,
                     "FATAL: S=%zu answers diverged from the S=1 monolith "
                     "at k=%zu\n",
                     num_shards, budgets[i]);
        std::abort();
      }
    }

    table.AddRow({std::to_string(num_shards), FormatDouble(prepare_s),
                  FormatDouble(save_ms),
                  FormatDouble(static_cast<double>(saved->file_bytes) / 1e6),
                  FormatDouble(saved->bytes_per_sample),
                  FormatDouble(load_ms), FormatDouble(mmap_ms),
                  std::to_string(min_graphs) + ".." +
                      std::to_string(max_graphs)});
    json.Add("shard_sweep/s" + std::to_string(num_shards) + "/prepare_s",
             prepare_s, "s");
    json.Add("shard_sweep/s" + std::to_string(num_shards) + "/save_ms",
             save_ms, "ms");
    json.Add("shard_sweep/s" + std::to_string(num_shards) + "/snapshot_bytes",
             static_cast<double>(saved->file_bytes), "bytes");
    json.Add("shard_sweep/s" + std::to_string(num_shards) +
                 "/bytes_per_sample",
             saved->bytes_per_sample, "bytes");
    json.Add("shard_sweep/s" + std::to_string(num_shards) + "/load_ms",
             load_ms, "ms");
    json.Add("shard_sweep/s" + std::to_string(num_shards) + "/mmap_load_ms",
             mmap_ms, "ms");
    json.Add("shard_sweep/s" + std::to_string(num_shards) + "/theta",
             static_cast<double>(pool.num_samples()), "samples");
  }
  std::filesystem::remove(snapshot_path);

  table.Print(std::cout);
  std::printf("\nall shard counts bit-identical to the S=1 monolith "
              "(live, snapshot-restored and mmap-served)\n");
  json.WriteTo(flags.json_path);
  return 0;
}
