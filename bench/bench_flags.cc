#include "bench/bench_flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/util/thread_pool.h"

namespace kboost {

int BenchFlags::ResolvedThreads() const {
  return threads > 0 ? threads : DefaultThreadCount();
}

namespace {

bool ParseDouble(const char* arg, const char* name, double* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = std::atof(arg + len);
  return true;
}

bool ParseU64(const char* arg, const char* name, uint64_t* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = std::strtoull(arg + len, nullptr, 10);
  return true;
}

}  // namespace

BenchFlags ParseBenchFlags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t u64 = 0;
    if (ParseDouble(arg, "--scale=", &flags.scale)) continue;
    if (ParseDouble(arg, "--epsilon=", &flags.epsilon)) continue;
    if (ParseU64(arg, "--sims=", &u64)) {
      flags.sims = u64;
      continue;
    }
    if (ParseU64(arg, "--threads=", &u64)) {
      flags.threads = static_cast<int>(u64);
      continue;
    }
    if (ParseU64(arg, "--seed=", &flags.seed)) continue;
    if (ParseU64(arg, "--max-samples=", &u64)) {
      flags.max_samples = u64;
      continue;
    }
    if (std::strncmp(arg, "--k=", 4) == 0) {
      flags.ks.clear();
      const char* p = arg + 4;
      while (*p) {
        flags.ks.push_back(std::strtoull(p, const_cast<char**>(&p), 10));
        if (*p == ',') ++p;
      }
      continue;
    }
    if (std::strncmp(arg, "--json=", 7) == 0) {
      flags.json_path = arg + 7;
      continue;
    }
    if (std::strcmp(arg, "--full") == 0) {
      flags.full = true;
      flags.scale = 1.0;
      flags.sims = 20000;
      flags.max_samples = 50'000'000;
      continue;
    }
    std::fprintf(
        stderr,
        "usage: %s [--scale=F] [--sims=N] [--threads=N] [--epsilon=F]\n"
        "          [--seed=N] [--k=a,b,c] [--json=PATH] [--full]\n"
        "  --scale    dataset size relative to the paper's (default 0.02)\n"
        "  --sims     Monte-Carlo evaluations per point (default 2000)\n"
        "  --json     write BENCH_*.json-style records to PATH (overwrites)\n"
        "  --full     paper-scale sizes and 20000 simulations\n",
        argv[0]);
    std::exit(std::strcmp(arg, "--help") == 0 ? 0 : 2);
  }
  return flags;
}

void PrintBanner(const std::string& experiment, const std::string& shape,
                 const BenchFlags& flags) {
  std::printf("== %s ==\n", experiment.c_str());
  std::printf("paper_shape: %s\n", shape.c_str());
  std::printf("config: scale=%.3g sims=%zu threads=%d epsilon=%.2f seed=%llu%s\n\n",
              flags.scale, flags.sims, flags.ResolvedThreads(), flags.epsilon,
              static_cast<unsigned long long>(flags.seed),
              flags.full ? " (paper scale)" : "");
}

}  // namespace kboost
